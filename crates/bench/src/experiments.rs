//! One entry point per paper artifact.
//!
//! Every function takes a [`Scale`] so the same code powers fast unit tests
//! and full-scale `cargo bench` runs, and returns structured results that
//! render to a [`Table`] mirroring the corresponding figure.
//!
//! | Function | Paper artifact |
//! |---|---|
//! | [`tab1_tradeoff`] | Table 1 + the §1 dual-scheme claims |
//! | [`tab2_config`] | Table 2 (system configuration) |
//! | [`fig7_micro_exec_time`] | Figure 7 (micro-benchmark execution time) |
//! | [`fig8_write_traffic`] | Figure 8 (NVM write traffic + ckpt delay) |
//! | [`fig9_fig10_kv`] | Figures 9 and 10 (KV throughput & bandwidth) |
//! | [`fig11_spec_ipc`] | Figure 11 (SPEC CPU2006 normalized IPC) |
//! | [`fig12_btt_sensitivity`] | Figure 12 (BTT size sweep) |
//! | [`e9_overlap_ablation`] | §3.1/§5.3 stop-the-world vs overlap |

use thynvm_types::SystemConfig;
use thynvm_workloads::kv::{hash::HashKv, rbtree::RbTreeKv, KvConfig};
use thynvm_workloads::micro::{MicroConfig, MicroPattern};
use thynvm_workloads::spec::{SpecWorkload, SPEC_2006};

use crate::report::{fmt_f, fmt_mb, Table};
use crate::runner::{run_with_caches, RunResult, SystemKind};

/// How much work each experiment performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Accesses per micro-benchmark run.
    pub micro_accesses: u64,
    /// Operations per key-value run.
    pub kv_ops: u64,
    /// Keys pre-populated before measuring a key-value run.
    pub kv_prepopulate: u64,
    /// Accesses per SPEC-like run.
    pub spec_accesses: u64,
}

impl Scale {
    /// Full scale for `cargo bench` (minutes of wall time overall).
    pub const fn bench() -> Self {
        Self {
            micro_accesses: 2_000_000,
            kv_ops: 400_000,
            kv_prepopulate: 8_192,
            spec_accesses: 2_000_000,
        }
    }

    /// Reduced scale for unit/integration tests (sub-second per run). The
    /// micro scale keeps the streaming footprint larger than the L3 so that
    /// write traffic actually reaches the memory controller.
    pub const fn test() -> Self {
        Self { micro_accesses: 80_000, kv_ops: 1_500, kv_prepopulate: 512, spec_accesses: 30_000 }
    }

    /// Scale selected by the `THYNVM_SCALE` environment variable (`test`
    /// for the reduced scale, anything else or unset for full scale) —
    /// lets `cargo bench` be smoke-tested quickly.
    pub fn from_env() -> Self {
        match std::env::var("THYNVM_SCALE").as_deref() {
            Ok("test") => Self::test(),
            _ => Self::bench(),
        }
    }
}

/// One (workload, system) cell of a figure.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Workload label (pattern / benchmark / request size).
    pub workload: String,
    /// System label.
    pub system: &'static str,
    /// The full run result.
    pub result: RunResult,
}

// ---------------------------------------------------------------------
// Figure 7
// ---------------------------------------------------------------------

/// Figure 7: execution time of the three micro-benchmarks on all five
/// systems, normalized to Ideal DRAM.
pub fn fig7_micro_exec_time(scale: Scale) -> (Table, Vec<Cell>) {
    let cfg = SystemConfig::paper();
    let mut cells = Vec::new();
    let mut table = Table::new(
        "Figure 7: micro-benchmark execution time (relative to Ideal DRAM)",
        &["pattern", "Ideal DRAM", "Ideal NVM", "Journal", "Shadow", "ThyNVM"],
    );
    for pattern in MicroPattern::all() {
        let micro = MicroConfig::new(pattern);
        let mut row = vec![pattern.as_str().to_owned()];
        let mut baseline: Option<RunResult> = None;
        for kind in SystemKind::paper_five() {
            let res = run_with_caches(kind, cfg, micro.events(scale.micro_accesses));
            let rel = match &baseline {
                None => 1.0,
                Some(b) => res.relative_time(b),
            };
            if baseline.is_none() {
                baseline = Some(res.clone());
            }
            row.push(fmt_f(rel));
            cells.push(Cell { workload: pattern.as_str().into(), system: kind.as_str(), result: res });
        }
        table.row(&row);
    }
    (table, cells)
}

// ---------------------------------------------------------------------
// Figure 8
// ---------------------------------------------------------------------

/// Figure 8: NVM write traffic (CPU / checkpointing / migration) and the
/// percentage of execution time spent stalled on checkpointing, for the
/// three consistency systems on each micro-benchmark.
pub fn fig8_write_traffic(scale: Scale) -> (Table, Vec<Cell>) {
    let cfg = SystemConfig::paper();
    let mut cells = Vec::new();
    let mut table = Table::new(
        "Figure 8: NVM write traffic (MB) and checkpointing delay",
        &["pattern", "system", "CPU", "Checkpoint", "Migration", "total", "% time on ckpt"],
    );
    for pattern in MicroPattern::all() {
        let micro = MicroConfig::new(pattern);
        for kind in [SystemKind::Journal, SystemKind::Shadow, SystemKind::ThyNvm] {
            let res = run_with_caches(kind, cfg, micro.events(scale.micro_accesses));
            table.row(&[
                pattern.as_str().into(),
                kind.as_str().into(),
                fmt_mb(res.mem.nvm_write_bytes_cpu),
                fmt_mb(res.mem.nvm_write_bytes_ckpt),
                fmt_mb(res.mem.nvm_write_bytes_migration),
                fmt_mb(res.mem.nvm_write_bytes_total()),
                fmt_f(res.ckpt_stall_share()),
            ]);
            cells.push(Cell { workload: pattern.as_str().into(), system: kind.as_str(), result: res });
        }
    }
    (table, cells)
}

// ---------------------------------------------------------------------
// Figures 9 and 10
// ---------------------------------------------------------------------

/// Which key-value store a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvKind {
    /// Chained hash table (Figures 9a/10a).
    HashTable,
    /// Red-black tree (Figures 9b/10b).
    RbTree,
}

impl KvKind {
    /// Display name.
    pub const fn as_str(self) -> &'static str {
        match self {
            KvKind::HashTable => "hash table",
            KvKind::RbTree => "red-black tree",
        }
    }
}

/// The request sizes swept in Figures 9/10.
pub const KV_REQUEST_SIZES: [u32; 5] = [16, 64, 256, 1024, 4096];

/// Figures 9 and 10: transaction throughput (KTPS) and write bandwidth
/// (MB/s) of the two key-value stores across request sizes, on all five
/// systems. One simulation powers both figures.
pub fn fig9_fig10_kv(scale: Scale, kv: KvKind) -> (Table, Table, Vec<Cell>) {
    let cfg = SystemConfig::paper();
    let mut cells = Vec::new();
    let mut throughput = Table::new(
        &format!("Figure 9: transaction throughput (KTPS), {} store", kv.as_str()),
        &["request B", "Ideal DRAM", "Ideal NVM", "Journal", "Shadow", "ThyNVM"],
    );
    let mut bandwidth = Table::new(
        &format!("Figure 10: write bandwidth (MB/s), {} store", kv.as_str()),
        &["request B", "Ideal DRAM", "Ideal NVM", "Journal", "Shadow", "ThyNVM"],
    );
    for request in KV_REQUEST_SIZES {
        let kv_cfg = KvConfig::new(request);
        // Larger requests move proportionally more data per transaction;
        // scale the op count down so every point simulates a comparable
        // amount of work (the paper ran fixed instruction counts).
        let ops_for_size =
            (scale.kv_ops * 64 / u64::from(request)).clamp(scale.kv_ops / 8, scale.kv_ops);
        // Build the trace once per request size; all systems replay it.
        let (events, ops) = match kv {
            KvKind::HashTable => {
                let mut store = HashKv::new(16 * 1024);
                kv_cfg.populate(&mut store, scale.kv_prepopulate);
                kv_cfg.trace(&mut store, ops_for_size)
            }
            KvKind::RbTree => {
                let mut store = RbTreeKv::new();
                kv_cfg.populate(&mut store, scale.kv_prepopulate);
                kv_cfg.trace(&mut store, ops_for_size)
            }
        };
        let mut t_row = vec![request.to_string()];
        let mut b_row = vec![request.to_string()];
        for kind in SystemKind::paper_five() {
            let res = run_with_caches(kind, cfg, events.iter().copied());
            t_row.push(fmt_f(res.throughput_tps(ops) / 1e3));
            b_row.push(fmt_f(res.write_bandwidth_mbps()));
            cells.push(Cell { workload: format!("{}B", request), system: kind.as_str(), result: res });
        }
        throughput.row(&t_row);
        bandwidth.row(&b_row);
    }
    (throughput, bandwidth, cells)
}

// ---------------------------------------------------------------------
// Figure 11
// ---------------------------------------------------------------------

/// Figure 11: IPC of the eight memory-intensive SPEC CPU2006 stand-ins,
/// normalized to Ideal DRAM.
pub fn fig11_spec_ipc(scale: Scale) -> (Table, Vec<Cell>) {
    let cfg = SystemConfig::paper();
    let mut cells = Vec::new();
    let mut table = Table::new(
        "Figure 11: SPEC CPU2006 IPC (normalized to Ideal DRAM)",
        &["benchmark", "Ideal DRAM", "Ideal NVM", "ThyNVM"],
    );
    for profile in SPEC_2006 {
        let workload = SpecWorkload::new(profile);
        let mut row = vec![profile.name.to_owned()];
        let mut base_ipc = 0.0f64;
        for kind in [SystemKind::IdealDram, SystemKind::IdealNvm, SystemKind::ThyNvm] {
            let res = run_with_caches(kind, cfg, workload.events(scale.spec_accesses));
            let ipc = res.ipc();
            if kind == SystemKind::IdealDram {
                base_ipc = ipc;
                row.push("1.000".into());
            } else {
                row.push(fmt_f(if base_ipc > 0.0 { ipc / base_ipc } else { 0.0 }));
            }
            cells.push(Cell { workload: profile.name.into(), system: kind.as_str(), result: res });
        }
        table.row(&row);
    }
    (table, cells)
}

// ---------------------------------------------------------------------
// Figure 12
// ---------------------------------------------------------------------

/// The BTT sizes swept in Figure 12.
pub const BTT_SIZES: [usize; 6] = [256, 512, 1024, 2048, 4096, 8192];

/// Figure 12: effect of the BTT size on the hash-table store — total NVM
/// write traffic and transaction throughput.
pub fn fig12_btt_sensitivity(scale: Scale) -> (Table, Vec<Cell>) {
    let mut cells = Vec::new();
    let mut table = Table::new(
        "Figure 12: BTT size sensitivity (hash-table KV store)",
        &["BTT entries", "NVM write traffic MB", "throughput KTPS", "epochs"],
    );
    // One trace, replayed against each BTT size. 256 B values give each
    // transaction a multi-block write so the BTT actually fills.
    let kv_cfg = KvConfig::new(256);
    let mut store = HashKv::new(16 * 1024);
    kv_cfg.populate(&mut store, scale.kv_prepopulate);
    let (events, ops) = kv_cfg.trace(&mut store, scale.kv_ops);
    for btt in BTT_SIZES {
        let mut cfg = SystemConfig::paper();
        cfg.thynvm.btt_entries = btt;
        let res = run_with_caches(SystemKind::ThyNvm, cfg, events.iter().copied());
        table.row(&[
            btt.to_string(),
            fmt_mb(res.mem.nvm_write_bytes_total()),
            fmt_f(res.throughput_tps(ops) / 1e3),
            res.mem.epochs_completed.to_string(),
        ]);
        cells.push(Cell { workload: format!("BTT={btt}"), system: "ThyNVM", result: res });
    }
    (table, cells)
}

// ---------------------------------------------------------------------
// Table 1 / §1 claims
// ---------------------------------------------------------------------

/// Table 1 ablation: uniform block-granularity vs uniform page-granularity
/// vs the dual scheme, across the micro-benchmarks. Reports application
/// stall share (the page-granularity pain) and peak translation-table
/// occupancy (the block-granularity pain).
pub fn tab1_tradeoff(scale: Scale) -> (Table, Vec<Cell>) {
    let cfg = SystemConfig::paper();
    let mut cells = Vec::new();
    let mut table = Table::new(
        "Table 1 ablation: checkpointing-granularity tradeoff",
        &["pattern", "scheme", "rel. exec time", "% time stalled on ckpt", "peak BTT+PTT entries"],
    );
    for pattern in MicroPattern::all() {
        let micro = MicroConfig::new(pattern);
        let mut baseline: Option<RunResult> = None;
        for kind in [SystemKind::ThyNvm, SystemKind::ThyNvmBlockOnly, SystemKind::ThyNvmPageOnly] {
            // Peak-occupancy inspection needs the concrete type, so rebuild.
            let mut sys = match kind {
                SystemKind::ThyNvmBlockOnly => {
                    let mut c = cfg;
                    c.thynvm.mode = thynvm_types::CkptMode::BlockOnly;
                    thynvm_core::ThyNvm::new(c)
                }
                SystemKind::ThyNvmPageOnly => {
                    let mut c = cfg;
                    c.thynvm.mode = thynvm_types::CkptMode::PageOnly;
                    thynvm_core::ThyNvm::new(c)
                }
                _ => thynvm_core::ThyNvm::new(cfg),
            };
            let mut core = thynvm_cache::CoreModel::new(cfg.cache);
            let cycles = core.run_trace(micro.events(scale.micro_accesses), &mut sys);
            let res = RunResult {
                system: kind.as_str(),
                cycles,
                instructions: core.stats().instructions,
                mem: thynvm_types::MemorySystem::stats(&sys).clone(),
                core: core.stats().clone(),
            };
            let rel = match &baseline {
                None => 1.0,
                Some(b) => res.relative_time(b),
            };
            if baseline.is_none() {
                baseline = Some(res.clone());
            }
            let peak = sys.btt().peak() + sys.ptt().peak();
            table.row(&[
                pattern.as_str().into(),
                kind.as_str().into(),
                fmt_f(rel),
                fmt_f(res.ckpt_stall_share()),
                peak.to_string(),
            ]);
            cells.push(Cell { workload: pattern.as_str().into(), system: kind.as_str(), result: res });
        }
    }
    (table, cells)
}

// ---------------------------------------------------------------------
// §3.1 / §5.3 overlap ablation
// ---------------------------------------------------------------------

/// The overlap ablation behind Figure 3: the same dual-scheme controller
/// with and without execution/checkpointing overlap. Backs the §3.1 claim
/// that stop-the-world checkpointing costs up to ~35 % of execution time on
/// memory-intensive workloads while ThyNVM's overlap reduces the stall
/// share to low single digits (§5.2 reports 2.5 % on average).
pub fn e9_overlap_ablation(scale: Scale) -> (Table, Vec<Cell>) {
    let cfg = SystemConfig::paper();
    let mut cells = Vec::new();
    let mut table = Table::new(
        "Overlap ablation (Figure 3): stop-the-world vs overlapped checkpointing",
        &["pattern", "scheme", "rel. exec time", "% time stalled on ckpt"],
    );
    for pattern in MicroPattern::all() {
        let micro = MicroConfig::new(pattern);
        let mut baseline: Option<RunResult> = None;
        for kind in [SystemKind::ThyNvm, SystemKind::ThyNvmNoOverlap] {
            let res = run_with_caches(kind, cfg, micro.events(scale.micro_accesses));
            let rel = match &baseline {
                None => 1.0,
                Some(b) => res.relative_time(b),
            };
            if baseline.is_none() {
                baseline = Some(res.clone());
            }
            table.row(&[
                pattern.as_str().into(),
                kind.as_str().into(),
                fmt_f(rel),
                fmt_f(res.ckpt_stall_share()),
            ]);
            cells.push(Cell { workload: pattern.as_str().into(), system: kind.as_str(), result: res });
        }
    }
    (table, cells)
}

// ---------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------

/// Table 2: the evaluated system configuration.
pub fn tab2_config() -> Table {
    let cfg = SystemConfig::paper();
    let mut table = Table::new("Table 2: system configuration", &["component", "value"]);
    let t = cfg.timing;
    let c = cfg.cache;
    let n = cfg.thynvm;
    let rows: Vec<(String, String)> = vec![
        ("Processor".into(), "3 GHz, in-order".into()),
        ("L1".into(), format!("{} KB, {}-way, {} cycles", c.l1_bytes / 1024, c.l1_ways, c.l1_hit_cycles)),
        ("L2".into(), format!("{} KB, {}-way, {} cycles", c.l2_bytes / 1024, c.l2_ways, c.l2_hit_cycles)),
        ("L3".into(), format!("{} MB, {}-way, {} cycles", c.l3_bytes / 1024 / 1024, c.l3_ways, c.l3_hit_cycles)),
        ("DRAM".into(), format!("{} ({}) ns row hit (miss)", t.dram_row_hit_ns, t.dram_row_miss_ns)),
        (
            "NVM".into(),
            format!(
                "{} ({}/{}) ns row hit (clean/dirty miss)",
                t.nvm_row_hit_ns, t.nvm_clean_miss_ns, t.nvm_dirty_miss_ns
            ),
        ),
        ("BTT/PTT".into(), format!("{}/{} entries, {} ns lookup", n.btt_entries, n.ptt_entries, t.table_lookup_ns)),
        ("DRAM size".into(), format!("{} MB", n.dram_bytes / 1024 / 1024)),
        ("Epoch".into(), format!("{} ms max", n.epoch_max_ms)),
        ("Metadata".into(), format!("{:.1} KB (≈37 KB in the paper)", n.metadata_bytes() as f64 / 1024.0)),
    ];
    for (k, v) in rows {
        table.row(&[k, v]);
    }
    table
}

/// Convenience: a short summary line comparing ThyNVM to Ideal DRAM on a
/// set of cells (the abstract's "within 4.9 % of an idealized DRAM-only
/// system" style of claim).
pub fn summarize_vs_ideal(cells: &[Cell]) -> String {
    let mut ratios = Vec::new();
    let workloads: std::collections::BTreeSet<String> =
        cells.iter().map(|c| c.workload.clone()).collect();
    for w in &workloads {
        let ideal = cells.iter().find(|c| &c.workload == w && c.system == "Ideal DRAM");
        let thynvm = cells.iter().find(|c| &c.workload == w && c.system == "ThyNVM");
        if let (Some(i), Some(t)) = (ideal, thynvm) {
            ratios.push(t.result.cycles.raw() as f64 / i.result.cycles.raw() as f64);
        }
    }
    if ratios.is_empty() {
        return "no comparable runs".into();
    }
    let gmean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    format!("ThyNVM geometric-mean slowdown vs Ideal DRAM: {:.1} %", (gmean - 1.0) * 100.0)
}


// ---------------------------------------------------------------------
// Additional ablations (DESIGN.md E10–E13)
// ---------------------------------------------------------------------

/// E10: sensitivity to the §4.2 scheme-switching thresholds. The paper
/// states the values (22 up / 16 down) were determined empirically; this
/// sweep shows the sliding-pattern execution time and migration traffic
/// across the threshold space.
pub fn e10_threshold_sensitivity(scale: Scale) -> (Table, Vec<Cell>) {
    let mut cells = Vec::new();
    let mut table = Table::new(
        "Threshold sensitivity (Sliding): promote/demote thresholds of §4.2",
        &["promote/demote", "rel. exec time", "migration MB", "pages promoted"],
    );
    let micro = MicroConfig::new(MicroPattern::Sliding);
    let sweeps: [(u8, u8); 5] = [(8, 4), (16, 8), (22, 16), (32, 24), (48, 40)];
    let mut baseline_cycles = None;
    for (promote, demote) in sweeps {
        let mut cfg = SystemConfig::paper();
        cfg.thynvm.promote_threshold = promote;
        cfg.thynvm.demote_threshold = demote;
        let res = run_with_caches(SystemKind::ThyNvm, cfg, micro.events(scale.micro_accesses));
        let base = *baseline_cycles.get_or_insert(res.cycles.raw());
        table.row(&[
            format!("{promote}/{demote}"),
            fmt_f(res.cycles.raw() as f64 / base as f64),
            fmt_mb(res.mem.nvm_write_bytes_migration),
            res.mem.pages_promoted.to_string(),
        ]);
        cells.push(Cell {
            workload: format!("thr={promote}/{demote}"),
            system: "ThyNVM",
            result: res,
        });
    }
    (table, cells)
}

/// E11: sensitivity to the epoch length (the §6 configurable persistence
/// guarantee: "only allowed to lose data updates that happened in the last
/// n ms"). Shorter epochs mean tighter durability and more checkpoints.
pub fn e11_epoch_length(scale: Scale) -> (Table, Vec<Cell>) {
    let mut cells = Vec::new();
    let mut table = Table::new(
        "Epoch-length sensitivity (hash-table KV): durability window vs cost",
        &["epoch ms", "KTPS", "NVM write MB", "checkpoints", "% time stalled"],
    );
    let kv_cfg = KvConfig::new(64);
    let mut store = HashKv::new(16 * 1024);
    kv_cfg.populate(&mut store, scale.kv_prepopulate);
    let (events, ops) = kv_cfg.trace(&mut store, scale.kv_ops);
    for epoch_ms in [1u64, 2, 5, 10, 20] {
        let mut cfg = SystemConfig::paper();
        cfg.thynvm.epoch_max_ms = epoch_ms;
        let res = run_with_caches(SystemKind::ThyNvm, cfg, events.iter().copied());
        table.row(&[
            epoch_ms.to_string(),
            fmt_f(res.throughput_tps(ops) / 1e3),
            fmt_mb(res.mem.nvm_write_bytes_total()),
            res.mem.epochs_completed.to_string(),
            fmt_f(res.ckpt_stall_share()),
        ]);
        cells.push(Cell { workload: format!("{epoch_ms}ms"), system: "ThyNVM", result: res });
    }
    (table, cells)
}

/// E12: sensitivity to the DRAM working-data region (and thus PTT
/// coverage) — the §4.2 observation that PTT size tracks DRAM size.
pub fn e12_dram_size(scale: Scale) -> (Table, Vec<Cell>) {
    let mut cells = Vec::new();
    let mut table = Table::new(
        "DRAM-size sensitivity (hash-table KV)",
        &["DRAM MB", "PTT entries", "KTPS", "NVM write MB", "pages promoted"],
    );
    let kv_cfg = KvConfig::new(256);
    let mut store = HashKv::new(16 * 1024);
    kv_cfg.populate(&mut store, scale.kv_prepopulate);
    let (events, ops) = kv_cfg.trace(&mut store, scale.kv_ops);
    for dram_mb in [2u64, 4, 8, 16, 32] {
        let mut cfg = SystemConfig::paper();
        cfg.thynvm.dram_bytes = dram_mb * 1024 * 1024;
        cfg.thynvm.ptt_entries = (cfg.thynvm.dram_pages() as usize).min(cfg.thynvm.ptt_entries * 2);
        let res = run_with_caches(SystemKind::ThyNvm, cfg, events.iter().copied());
        table.row(&[
            dram_mb.to_string(),
            cfg.thynvm.ptt_entries.to_string(),
            fmt_f(res.throughput_tps(ops) / 1e3),
            fmt_mb(res.mem.nvm_write_bytes_total()),
            res.mem.pages_promoted.to_string(),
        ]);
        cells.push(Cell { workload: format!("{dram_mb}MB"), system: "ThyNVM", result: res });
    }
    (table, cells)
}

/// E13: recovery time as a function of the number of DRAM pages that must
/// be restored (§4.5 step 2 dominates recovery: the PTT pages reload from
/// NVM into DRAM). Backs the paper's "fast recovery" benefit of NVM over
/// slow block devices.
pub fn e13_recovery_time() -> Table {
    use thynvm_types::{Cycle, PhysAddr, PAGE_BYTES};
    let mut table = Table::new(
        "Recovery time vs restored DRAM pages (§4.5)",
        &["PTT pages restored", "recovery µs"],
    );
    for pages in [0u64, 16, 64, 256, 1024] {
        let mut cfg = SystemConfig::paper();
        cfg.thynvm.promote_threshold = 1; // promote on first write
        cfg.thynvm.demote_threshold = 0; // never demote
        let mut sys = thynvm_core::ThyNvm::new(cfg);
        let mut now = Cycle::ZERO;
        // Dirty `pages` distinct pages so they are promoted and resident.
        for p in 0..pages {
            let base = p * PAGE_BYTES;
            now = now.max(sys.store_bytes(PhysAddr::new(base), &[1u8; 64], now));
        }
        let t = sys.force_checkpoint(now);
        let t = thynvm_types::MemorySystem::drain(&mut sys, t);
        let report = sys.crash_and_recover(t);
        assert!(report.restored_pages as u64 >= pages.min(1), "pages restored");
        table.row(&[
            report.restored_pages.to_string(),
            fmt_f(report.recovery_cycles.as_ns() / 1e3),
        ]);
    }
    table
}

/// E14: NVM endurance (wear) comparison. NVM cells tolerate a bounded
/// number of writes, so the *distribution* of writes across rows governs
/// device lifetime. ThyNVM's alternating checkpoint regions spread updates
/// over two locations per datum, while journaling re-commits every datum
/// in place plus hammers the sequential journal area.
pub fn e14_endurance(scale: Scale) -> Table {
    use thynvm_cache::CoreModel;
    use thynvm_types::MemorySystem as _;

    let cfg = SystemConfig::paper();
    let kv_cfg = KvConfig::new(256);
    let mut store = HashKv::new(16 * 1024);
    kv_cfg.populate(&mut store, scale.kv_prepopulate);
    let (events, _) = kv_cfg.trace(&mut store, scale.kv_ops);

    let mut table = Table::new(
        "NVM endurance (hash-table KV): row-write distribution",
        &["system", "rows written", "total row writes", "max per row", "imbalance"],
    );
    let mut run = |name: &str, wear: thynvm_mem::WearStats| {
        table.row(&[
            name.to_owned(),
            wear.rows_written.to_string(),
            wear.total_writes.to_string(),
            wear.max_row_writes.to_string(),
            fmt_f(wear.imbalance),
        ]);
    };

    let mut sys = thynvm_core::ThyNvm::new(cfg);
    let mut core = CoreModel::new(cfg.cache);
    core.run_trace(events.iter().copied(), &mut sys);
    run(sys.name(), sys.nvm_device().wear());

    let mut sys = thynvm_baselines::Journaling::new(cfg);
    let mut core = CoreModel::new(cfg.cache);
    core.run_trace(events.iter().copied(), &mut sys);
    run(sys.name(), sys.nvm_device().wear());

    let mut sys = thynvm_baselines::ShadowPaging::new(cfg);
    let mut core = CoreModel::new(cfg.cache);
    core.run_trace(events.iter().copied(), &mut sys);
    run(sys.name(), sys.nvm_device().wear());

    table
}

/// E15: multi-core scalability. Table 2 sizes the L3 "per core"; this
/// experiment runs 1/2/4 cores, each with its own Sliding working set in a
/// disjoint address range, against one shared ThyNVM controller, and
/// reports aggregate IPC and checkpoint interference. Ideal DRAM provides
/// the contention-only baseline.
pub fn e15_multicore(scale: Scale) -> (Table, Vec<Cell>) {
    use thynvm_cache::MulticorePlatform;

    let cfg = SystemConfig::paper();
    let cells = Vec::new();
    let mut table = Table::new(
        "Multi-core scalability (Sliding per core, disjoint address spaces)",
        &["cores", "system", "aggregate IPC", "per-core IPC", "flush stalls (cycles)"],
    );
    for n in [1usize, 2, 4] {
        let traces: Vec<Vec<thynvm_types::TraceEvent>> = (0..n)
            .map(|c| {
                let mut micro = MicroConfig::new(MicroPattern::Sliding);
                micro.seed ^= c as u64;
                let base = (c as u64) << 30; // 1 GiB apart
                micro
                    .events(scale.micro_accesses / n as u64)
                    .map(|mut e| {
                        e.req.addr = thynvm_types::PhysAddr::new(e.req.addr.raw() + base);
                        e
                    })
                    .collect()
            })
            .collect();
        for kind in [SystemKind::IdealDram, SystemKind::ThyNvm] {
            let mut platform = MulticorePlatform::new(cfg.cache, n);
            let mut mem = kind.build(cfg);
            let results = platform.run(traces.clone(), mem.as_mut());
            let agg: f64 = results.iter().map(|r| r.ipc()).sum();
            let stalls: u64 =
                results.iter().map(|r| r.stats.flush_stall_cycles.raw()).sum();
            table.row(&[
                n.to_string(),
                kind.as_str().into(),
                fmt_f(agg),
                fmt_f(agg / n as f64),
                stalls.to_string(),
            ]);
        }
    }
    (table, cells)
}

/// E16: Working Data Region placement (§4.1 footnote 3 — "we leave the
/// exploration of such choices to future work"). NVM placement removes the
/// volatile working copies (shorter checkpoints, nothing to restore on
/// recovery) at the price of serving every working-region access at NVM
/// speed.
pub fn e16_working_region(scale: Scale) -> (Table, Vec<Cell>) {
    use thynvm_types::WorkingRegion;

    let cells = Vec::new();
    let mut table = Table::new(
        "Working Data Region placement (§4.1 footnote 3)",
        &["pattern", "placement", "rel. exec time", "% time on ckpt", "NVM write MB"],
    );
    for pattern in MicroPattern::all() {
        let micro = MicroConfig::new(pattern);
        let mut baseline: Option<RunResult> = None;
        for placement in [WorkingRegion::Dram, WorkingRegion::Nvm] {
            let mut cfg = SystemConfig::paper();
            cfg.thynvm.working_region = placement;
            let res = run_with_caches(SystemKind::ThyNvm, cfg, micro.events(scale.micro_accesses));
            let rel = match &baseline {
                None => 1.0,
                Some(b) => res.relative_time(b),
            };
            if baseline.is_none() {
                baseline = Some(res.clone());
            }
            table.row(&[
                pattern.as_str().into(),
                format!("{placement:?}"),
                fmt_f(rel),
                fmt_f(res.ckpt_stall_share()),
                fmt_mb(res.mem.nvm_write_bytes_total()),
            ]);
        }
    }
    (table, cells)
}

/// E17: YCSB core mixes on the hash-table store — the KV evaluation the
/// wider persistent-memory literature reports. Zipfian-skewed requests
/// concentrate updates on hot keys, the best case for both DRAM caching
/// and write coalescing.
pub fn e17_ycsb(scale: Scale) -> (Table, Vec<Cell>) {
    use thynvm_workloads::ycsb::{YcsbConfig, YcsbMix};

    let cfg = SystemConfig::paper();
    let mut cells = Vec::new();
    let mut table = Table::new(
        "YCSB core mixes (hash-table store, 1 KiB values): throughput KTPS",
        &["mix", "Ideal DRAM", "Journal", "Shadow", "ThyNVM"],
    );
    let ops = (scale.kv_ops / 8).max(1_000);
    for mix in YcsbMix::ALL {
        let ycsb = YcsbConfig { records: 8 * 1024, ..YcsbConfig::new(mix) };
        let mut store = HashKv::new(16 * 1024);
        let (events, txns) = ycsb.run(&mut store, ops);
        let mut row = vec![mix.as_str().to_owned()];
        for kind in
            [SystemKind::IdealDram, SystemKind::Journal, SystemKind::Shadow, SystemKind::ThyNvm]
        {
            let res = run_with_caches(kind, cfg, events.iter().copied());
            row.push(fmt_f(res.throughput_tps(txns) / 1e3));
            cells.push(Cell { workload: mix.as_str().into(), system: kind.as_str(), result: res });
        }
        table.row(&row);
    }
    (table, cells)
}

/// E19: media resilience. Runs the hash-table KV trace on ThyNVM with the
/// NVM media-fault model disabled and then armed (transient flips, wear-
/// induced stuck-at cells, integrity CRCs, retry/remap/scrub healing), and
/// reports device wear alongside the full self-healing ledger: faults
/// observed, retries spent, blocks remapped, scrubber repairs, and the CRC
/// verification work the `integrity` knob costs.
pub fn e19_media_resilience(scale: Scale) -> Table {
    use thynvm_cache::CoreModel;
    use thynvm_types::{MediaFaultConfig, MemorySystem as _};

    let kv_cfg = KvConfig::new(256);
    let mut store = HashKv::new(16 * 1024);
    kv_cfg.populate(&mut store, scale.kv_prepopulate);
    let (events, _) = kv_cfg.trace(&mut store, scale.kv_ops);

    let mut table = Table::new(
        "NVM media resilience (hash-table KV): wear + self-healing ledger",
        &[
            "media model",
            "rows written",
            "max per row",
            "bit flips",
            "stuck",
            "retries",
            "remaps",
            "scrubbed",
            "CRC blocks",
            "CRC µs",
        ],
    );

    let mut armed = MediaFaultConfig::hardened();
    armed.bit_flip_rate = 1e-3;
    armed.stuck_at_threshold = 64;
    for (label, media) in [("off", MediaFaultConfig::default()), ("hardened", armed)] {
        let mut cfg = SystemConfig::paper();
        cfg.media = media;
        cfg.validate().expect("valid media config");
        let mut sys = thynvm_core::ThyNvm::new(cfg);
        let mut core = CoreModel::new(cfg.cache);
        core.run_trace(events.iter().copied(), &mut sys);
        let wear = sys.nvm_device().wear();
        let m = sys.stats().media;
        table.row(&[
            label.to_owned(),
            wear.rows_written.to_string(),
            wear.max_row_writes.to_string(),
            m.bit_flips.to_string(),
            m.stuck_faults.to_string(),
            m.retries.to_string(),
            m.remaps.to_string(),
            m.scrub_repairs.to_string(),
            m.crc_checked_blocks.to_string(),
            fmt_f(m.crc_check_cycles.as_ns() / 1e3),
        ]);
    }
    table
}

/// E20: recovery latency vs nested-crash depth. Recovery is restartable —
/// a power failure *during* recovery restarts it from the persisted commit
/// record — so each extra stacked crash pays one more (partial) recovery
/// attempt. A probe run learns the recovery-step boundaries, then each
/// depth queues that many crash points at step boundaries and reports the
/// end-to-end recovery time (aborted attempts included), attempt count,
/// and nested-crash count.
pub fn e20_recovery_latency() -> Table {
    use thynvm_types::{Cycle, PhysAddr, PAGE_BYTES};

    // A fixed checkpointed working set: 64 promoted pages plus the
    // metadata images, so recovery has real replay and re-arm work.
    let build = || {
        let mut cfg = SystemConfig::paper();
        cfg.thynvm.promote_threshold = 1; // promote on first write
        cfg.thynvm.demote_threshold = 0; // never demote
        let mut sys = thynvm_core::ThyNvm::new(cfg);
        let mut now = Cycle::ZERO;
        for p in 0..64u64 {
            now = now.max(sys.store_bytes(PhysAddr::new(p * PAGE_BYTES), &[1u8; 64], now));
        }
        let t = sys.force_checkpoint(now);
        let t = thynvm_types::MemorySystem::drain(&mut sys, t);
        (sys, t)
    };

    // Probe: one clean crash learns where each recovery step completes.
    let (mut probe, t0) = build();
    probe.arm_crash_point(t0);
    probe.poll_crash(t0 + Cycle::new(1));
    let probe_report = probe
        .take_crash_report()
        .expect("invariant: crash point armed before poll")
        .report;
    let boundaries: Vec<Cycle> = probe_report.steps.iter().map(|&(_, end)| end).collect();
    assert!(!boundaries.is_empty(), "recovery reported no steps");

    let mut table = Table::new(
        "Recovery latency vs nested-crash depth (restartable recovery)",
        &["crash depth", "recovery µs", "attempts", "nested crashes"],
    );
    for depth in 0..=4usize {
        let (mut sys, t) = build();
        sys.arm_crash_point(t);
        for i in 0..depth {
            // One cycle short of a step boundary: the step is interrupted
            // and redone by the next attempt. Cycling through the
            // boundaries stacks crashes on successive restarts.
            let b = boundaries[i % boundaries.len()];
            sys.queue_crash_point(b.saturating_sub(Cycle::new(1)));
        }
        sys.poll_crash(t + Cycle::new(1));
        let crash = sys
            .take_crash_report()
            .expect("invariant: crash point armed before poll");
        table.row(&[
            depth.to_string(),
            fmt_f(crash.report.recovery_cycles.as_ns() / 1e3),
            crash.report.attempts.to_string(),
            crash.report.nested_crashes.to_string(),
        ]);
    }
    table
}

/// E21: DRAM resilience. Runs the hash-table KV trace on ThyNVM with the
/// DRAM ECC fault model disabled and then at escalating fault pressure,
/// and reports the containment ledger: corrected single-bit flips,
/// poisoned (uncorrectable) blocks, transparent refetches from the NVM
/// checkpoint copy, quarantined dirty pages with the bytes they dropped,
/// and the execution-time cost relative to the fault-free run.
pub fn e21_dram_resilience(scale: Scale) -> Table {
    use thynvm_cache::CoreModel;
    use thynvm_types::{DramFaultConfig, MemorySystem as _};

    let kv_cfg = KvConfig::new(256);
    let mut store = HashKv::new(16 * 1024);
    kv_cfg.populate(&mut store, scale.kv_prepopulate);
    let (events, _) = kv_cfg.trace(&mut store, scale.kv_ops);

    let mut table = Table::new(
        "DRAM resilience (hash-table KV): ECC pressure vs containment cost",
        &[
            "dram model",
            "rel time",
            "corrected",
            "poisoned",
            "refetched",
            "quarantined",
            "dropped KiB",
        ],
    );

    // Rates are per ECC-checked DRAM read — far above field rates, chosen
    // so the ladder exercises every containment path at bench scale.
    let hardened = DramFaultConfig::hardened();
    let ladder = [
        ("off", DramFaultConfig::default()),
        ("flips 5e-2", DramFaultConfig { flip_rate: 5e-2, ..hardened }),
        ("poison 5e-2", DramFaultConfig { poison_rate: 5e-2, ..hardened }),
        ("flips+poison 2e-1", DramFaultConfig { flip_rate: 2e-1, poison_rate: 2e-1, ..hardened }),
    ];
    let mut baseline = None;
    for (label, dram) in ladder {
        let mut cfg = SystemConfig::paper();
        cfg.dram_fault = dram;
        cfg.validate().expect("valid dram config");
        let mut sys = thynvm_core::ThyNvm::new(cfg);
        let mut core = CoreModel::new(cfg.cache);
        let end = core.run_trace(events.iter().copied(), &mut sys);
        let base = *baseline.get_or_insert(end.raw().max(1));
        let d = sys.stats().dram;
        table.row(&[
            label.to_owned(),
            fmt_f(end.raw() as f64 / base as f64),
            d.corrected_flips.to_string(),
            d.poisoned_blocks.to_string(),
            d.poison_refetched.to_string(),
            d.quarantined_pages.to_string(),
            fmt_f(d.quarantine_dropped_bytes as f64 / 1024.0),
        ]);
    }
    table
}

/// E22: secure persistent memory mode. Runs the hash-table KV trace with
/// the security model off and hardened and reports the crypto ledger:
/// blocks encrypted and verified, counter-table persists at epoch
/// boundaries, security-metadata bytes (counters + tree nodes + sealed
/// roots), modeled crypto time, and the security-metadata write
/// amplification over total NVM write traffic. The hardened run ends with
/// a crash so the `verified` column includes MAC-authenticated recovery
/// reads — the ledger proves verification ran, not that an adversary
/// showed up (tamper injection is exercised by the sweep tests).
///
/// The journaling baseline runs the same ladder (arXiv:1901.00620's
/// apples-to-apples comparison): it encrypts per commit rather than per
/// checkpoint, so its counter-table persist cadence — and with it the
/// metadata write amplification — tracks the journal commit rate instead
/// of the epoch length. Relative time is within-system (each `hardened`
/// row against its own `off` row).
pub fn e22_secure_mode(scale: Scale) -> Table {
    use thynvm_cache::CoreModel;
    use thynvm_types::{MemorySystem as _, SecurityConfig};

    let kv_cfg = KvConfig::new(256);
    let mut store = HashKv::new(16 * 1024);
    kv_cfg.populate(&mut store, scale.kv_prepopulate);
    let (events, _) = kv_cfg.trace(&mut store, scale.kv_ops);

    let mut table = Table::new(
        "Secure persistent memory (hash-table KV): counter-mode crypto cost",
        &[
            "security",
            "rel time",
            "encrypted",
            "verified",
            "ctr persists",
            "meta KiB",
            "crypto µs",
            "meta amp %",
        ],
    );

    let ladder = [("off", SecurityConfig::default()), ("hardened", SecurityConfig::hardened())];
    let mut baseline = None;
    for (label, security) in ladder {
        let mut cfg = SystemConfig::paper();
        cfg.security = security;
        cfg.validate().expect("valid security config");
        let mut sys = thynvm_core::ThyNvm::new(cfg);
        let mut core = CoreModel::new(cfg.cache);
        let end = core.run_trace(events.iter().copied(), &mut sys);
        let base = *baseline.get_or_insert(end.raw().max(1));
        if security.enabled {
            // MAC-verified recovery over the trace's real state; its
            // authenticated reads land in the `verified` column. The
            // relative-time column compares execution only.
            let _ = sys.crash_and_recover(end);
        }
        let s = sys.stats().security;
        let meta_bytes = s.counter_bytes + s.tree_bytes + 64 * s.root_persists;
        let nvm_total = sys.stats().nvm_write_bytes_total().max(1);
        table.row(&[
            label.to_owned(),
            fmt_f(end.raw() as f64 / base as f64),
            s.blocks_encrypted.to_string(),
            s.blocks_verified.to_string(),
            s.counter_persists.to_string(),
            fmt_f(meta_bytes as f64 / 1024.0),
            fmt_f(s.crypto_cycles.as_ns() / 1e3),
            fmt_f(100.0 * meta_bytes as f64 / nvm_total as f64),
        ]);
    }

    let mut jbaseline = None;
    for (label, security) in ladder {
        let mut cfg = SystemConfig::paper();
        cfg.security = security;
        cfg.validate().expect("valid security config");
        let mut sys = thynvm_baselines::Journaling::new(cfg);
        let mut core = CoreModel::new(cfg.cache);
        let end = core.run_trace(events.iter().copied(), &mut sys);
        let base = *jbaseline.get_or_insert(end.raw().max(1));
        let s = sys.stats().security;
        let meta_bytes = s.counter_bytes + s.tree_bytes + 64 * s.root_persists;
        let nvm_total = sys.stats().nvm_write_bytes_total().max(1);
        table.row(&[
            format!("journal {label}"),
            fmt_f(end.raw() as f64 / base as f64),
            s.blocks_encrypted.to_string(),
            s.blocks_verified.to_string(),
            s.counter_persists.to_string(),
            fmt_f(meta_bytes as f64 / 1024.0),
            fmt_f(s.crypto_cycles.as_ns() / 1e3),
            fmt_f(100.0 * meta_bytes as f64 / nvm_total as f64),
        ]);
    }
    table
}

/// E23: long-horizon endurance and the graceful-degradation ladder
/// (DESIGN.md §11). A deterministic wear workload — hot rows rewritten
/// past the stuck-at threshold every epoch, then traffic-free cool-down
/// epochs — runs under four fault postures with the health ladder off and
/// on. Reported per row: execution time relative to the fault-free
/// health-off run, the final ladder rung, the rung-transition ledger
/// (demotions / promotions), the Wounded posture's emergency checkpoints,
/// stores rejected at `ReadOnly`, and the bounded-retry traffic
/// (`RetryPolicy`-issued media retries and DRAM ECC events).
///
/// Two claims made measurable: the quiet health-on row is cycle-identical
/// to the quiet health-off row (the ladder costs nothing until a signal
/// fires — the same twin that `BENCH_simspeed.json` pins), and under
/// sustained wear the ladder degrades monotonically instead of letting
/// retry latency grow unbounded.
pub fn e23_endurance(scale: Scale) -> Table {
    use thynvm_types::{
        Cycle, DramFaultConfig, HealthConfig, MediaFaultConfig, MemorySystem as _, PhysAddr,
    };

    const PAGE: u64 = 4096;
    // Scale the stress phase with the micro budget; the cool-down stays
    // fixed at the window-drain + promotion-streak length.
    let stress_epochs = (scale.micro_accesses / 13_000).clamp(6, 60);
    let quiet_epochs = 7u64;

    // The soak posture: thresholds low enough that the deterministic wear
    // schedule walks the ladder within the stress phase.
    let health_on = HealthConfig {
        window_epochs: 4,
        wounded_retry_rate: 2,
        wounded_refetch_rate: 2,
        readonly_scrub_backlog: 4,
        promote_clean_epochs: 2,
        ..HealthConfig::hardened()
    };
    let media_on = MediaFaultConfig { stuck_at_threshold: 8, spare_blocks: 4, ..MediaFaultConfig::hardened() };
    let dram_on = DramFaultConfig { flip_rate: 0.2, poison_rate: 0.02, ..DramFaultConfig::hardened() };

    let postures: [(&str, bool, bool, bool); 5] = [
        ("off quiet", false, false, false),
        ("on quiet", true, false, false),
        ("off wear", false, true, false),
        ("on wear", true, true, false),
        ("on wear+ecc", true, true, true),
    ];

    let mut table = Table::new(
        "Endurance ladder (deterministic wear): graceful degradation cost",
        &[
            "posture",
            "rel time",
            "final rung",
            "demote",
            "promote",
            "emrg ckpt",
            "rejected",
            "media retries",
            "ecc events",
        ],
    );

    let mut baseline = None;
    for (label, health, media, dram) in postures {
        let mut cfg = SystemConfig::small_test();
        if health {
            cfg.health = health_on;
        }
        if media {
            cfg.media = media_on;
        }
        if dram {
            cfg.dram_fault = dram_on;
        }
        cfg.validate().expect("valid endurance config");
        let mut sys = thynvm_core::ThyNvm::new(cfg);
        let mut now = Cycle::ZERO;
        for epoch in 0..stress_epochs {
            for rep in 0..2u64 {
                for page in 0..3u64 {
                    for blk in 0..8u64 {
                        let fill = (1 + epoch * 40 + page * 11 + blk + rep * 3) as u8;
                        now = now.max(sys.store_bytes(
                            PhysAddr::new(page * PAGE + blk * 64),
                            &[fill; 64],
                            now,
                        ));
                    }
                }
            }
            for page in 0..3u64 {
                for blk in 0..4u64 {
                    let mut buf = [0u8; 64];
                    now = now.max(sys.load_bytes(PhysAddr::new(page * PAGE + blk * 128), &mut buf, now));
                }
            }
            now = now.max(sys.force_checkpoint(now)) + Cycle::new(600_000);
        }
        for _ in 0..quiet_epochs {
            now = now.max(sys.force_checkpoint(now)) + Cycle::new(600_000);
        }
        now = sys.drain(now);
        let base = *baseline.get_or_insert(now.raw().max(1));
        let s = sys.stats();
        table.row(&[
            label.to_owned(),
            fmt_f(now.raw() as f64 / base as f64),
            sys.health_rung().to_string(),
            s.health.demotions.to_string(),
            s.health.promotions.to_string(),
            s.health.emergency_checkpoints.to_string(),
            s.health.stores_rejected.to_string(),
            s.media.retries.to_string(),
            (s.dram.corrected_flips + s.dram.refetch_retries).to_string(),
        ]);
    }
    table
}

/// E24: the volatile persist-buffer fault domain (DESIGN.md §12). The
/// same deterministic checkpointed workload runs with the buffer off,
/// armed but crash-free, and armed with a crash injected one cycle
/// before a checkpoint seals — once with `salvage_rate` 0.0 (the
/// partial flush drops every in-flight entry, the torn marker never
/// lands, recovery rolls back) and once at 1.0 (the residual-powered
/// drain finishes, the marker is salvaged, and recovery early-commits
/// the in-flight checkpoint). Reported per row: execution time relative
/// to the buffer-off run, the conservation ledger (enqueued / drained /
/// dropped), §4.4 fences with their stall cost, the widest reorder
/// window a crash could have exploited, and the crash verdict.
///
/// Two claims made measurable: arming the buffer on a crash-free run is
/// cycle-identical to off (every fence finds an already-drained buffer —
/// the same twin `BENCH_simspeed.json` pins), and the crash verdict is
/// decided by the salvage schedule alone, not by the workload.
pub fn e24_persist_buffer(scale: Scale) -> Table {
    use thynvm_types::{Cycle, MemorySystem as _, PersistBufferConfig, PhysAddr};

    const PAGE: u64 = 4096;
    let epochs = (scale.micro_accesses / 20_000).clamp(3, 12);

    let cfg_for = |rate: Option<f64>| {
        let mut cfg = SystemConfig::small_test();
        if let Some(salvage_rate) = rate {
            cfg.wpq = PersistBufferConfig { salvage_rate, ..PersistBufferConfig::armed() };
        }
        cfg.validate().expect("valid persist-buffer config");
        cfg
    };
    // One epoch of stores; returns the issue cycle the checkpoint starts at.
    let run_epoch = |sys: &mut thynvm_core::ThyNvm, epoch: u64, mut now: Cycle| -> Cycle {
        for page in 0..3u64 {
            for blk in 0..8u64 {
                let fill = (1 + epoch * 31 + page * 7 + blk) as u8;
                now = now.max(sys.store_bytes(PhysAddr::new(page * PAGE + blk * 64), &[fill; 64], now));
            }
        }
        now
    };

    // Probe pass: learn when the final checkpoint seals, so the crash rows
    // can land one cycle short of it — inside the commit window.
    let mut probe = thynvm_core::ThyNvm::new(cfg_for(Some(1.0)));
    let mut now = Cycle::ZERO;
    let mut final_done = Cycle::ZERO;
    for epoch in 0..epochs {
        now = run_epoch(&mut probe, epoch, now);
        let ret = probe.force_checkpoint(now);
        // The checkpoint commits on the background timeline: its seal
        // lands at the job's `done_at`, not at the foreground return.
        final_done = probe.epoch_state().job.as_ref().map_or(ret, |j| j.done_at);
        now = ret + Cycle::new(600_000);
    }

    let postures: [(&str, Option<f64>, bool); 4] = [
        ("off", None, false),
        ("on quiet", Some(1.0), false),
        ("on crash r=0.0", Some(0.0), true),
        ("on crash r=1.0", Some(1.0), true),
    ];

    let mut table = Table::new(
        "Persist-buffer fault domain: fence cost and crash-time salvage",
        &["posture", "rel time", "enqueued", "drained", "dropped", "fences", "stall µs", "window", "verdict"],
    );

    let mut baseline = None;
    for (label, rate, crash) in postures {
        let mut sys = thynvm_core::ThyNvm::new(cfg_for(rate));
        if crash {
            sys.arm_crash_point(final_done.saturating_sub(Cycle::new(1)));
        }
        let mut now = Cycle::ZERO;
        for epoch in 0..epochs {
            now = run_epoch(&mut sys, epoch, now);
            now = sys.force_checkpoint(now) + Cycle::new(600_000);
        }
        if let Some(resume) = sys.poll_crash(now) {
            now = now.max(resume);
        }
        now = sys.drain(now);
        let base = *baseline.get_or_insert(now.raw().max(1));
        let verdict = if crash {
            let flush = sys.last_wpq_flush().expect("armed crash flushed the buffer");
            assert!(sys.take_crash_report().is_some(), "armed crash point never fired");
            if flush.commit_salvaged() { "salvaged" } else { "rollback" }
        } else {
            "-"
        };
        let w = sys.stats().wpq;
        assert_eq!(
            w.enqueued,
            w.drained + w.dropped_at_crash + w.outstanding(),
            "persist-buffer ledger out of balance for {label}"
        );
        table.row(&[
            label.to_owned(),
            fmt_f(now.raw() as f64 / base as f64),
            w.enqueued.to_string(),
            w.drained.to_string(),
            w.dropped_at_crash.to_string(),
            w.fences.to_string(),
            fmt_f(w.fence_stall_cycles.as_ns() / 1e3),
            w.reorder_window_max.to_string(),
            verdict.to_owned(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab2_renders_paper_values() {
        let t = tab2_config();
        let s = t.render();
        assert!(s.contains("3 GHz"));
        assert!(s.contains("2048/4096"));
        assert!(s.contains("40 (80)"));
        assert!(s.contains("368"));
    }

    #[test]
    fn fig7_shape_holds_at_test_scale() {
        let (table, cells) = fig7_micro_exec_time(Scale::test());
        assert_eq!(table.len(), 3);
        assert_eq!(cells.len(), 15);
        // ThyNVM must beat Journal and Shadow on every pattern (the paper's
        // headline micro-benchmark claim).
        for pattern in ["Random", "Streaming", "Sliding"] {
            let time = |sys: &str| {
                cells
                    .iter()
                    .find(|c| c.workload == pattern && c.system == sys)
                    .map(|c| c.result.cycles.raw())
                    .expect("cell present")
            };
            assert!(
                time("ThyNVM") <= time("Journal").max(time("Shadow")),
                "{pattern}: ThyNVM {} vs Journal {} Shadow {}",
                time("ThyNVM"),
                time("Journal"),
                time("Shadow"),
            );
            // Page-granularity systems legitimately edge out Ideal DRAM on
            // sequential patterns (4 KiB bulk transfers amortize row
            // latency, acting like prefetch), so the strict ordering is
            // only required on Random.
            if pattern == "Random" {
                assert!(time("Ideal DRAM") <= time("ThyNVM"));
            }
        }
    }

    #[test]
    fn fig8_traffic_components_are_consistent() {
        let (_, cells) = fig8_write_traffic(Scale::test());
        for c in &cells {
            let total = c.result.mem.nvm_write_bytes_total();
            assert_eq!(
                total,
                c.result.mem.nvm_write_bytes_cpu
                    + c.result.mem.nvm_write_bytes_ckpt
                    + c.result.mem.nvm_write_bytes_migration
            );
            assert!(total > 0, "{}/{} wrote nothing to NVM", c.workload, c.system);
        }
        // Only ThyNVM has migration traffic.
        for c in cells.iter().filter(|c| c.system != "ThyNVM") {
            assert_eq!(c.result.mem.nvm_write_bytes_migration, 0);
        }
    }

    #[test]
    fn fig12_more_btt_entries_mean_fewer_epochs() {
        let (_, cells) = fig12_btt_sensitivity(Scale::test());
        let epochs: Vec<u64> = cells.iter().map(|c| c.result.mem.epochs_completed).collect();
        assert!(
            epochs.first() >= epochs.last(),
            "epochs should not increase with BTT size: {epochs:?}"
        );
    }

    #[test]
    fn overlap_reduces_stall_share() {
        let (_, cells) = e9_overlap_ablation(Scale::test());
        for pattern in ["Random", "Streaming", "Sliding"] {
            let stall = |sys: &str| {
                cells
                    .iter()
                    .find(|c| c.workload == pattern && c.system == sys)
                    .map(|c| c.result.ckpt_stall_share())
                    .expect("cell present")
            };
            assert!(
                stall("ThyNVM") <= stall("No-overlap") + 1e-9,
                "{pattern}: overlap {} vs stop-the-world {}",
                stall("ThyNVM"),
                stall("No-overlap"),
            );
        }
    }

    #[test]
    fn e10_threshold_sweep_produces_five_rows() {
        let (table, cells) = e10_threshold_sensitivity(Scale::test());
        assert_eq!(table.len(), 5);
        assert_eq!(cells.len(), 5);
    }

    #[test]
    fn e11_epoch_sweep_produces_five_rows() {
        let (table, cells) = e11_epoch_length(Scale::test());
        assert_eq!(table.len(), 5);
        assert!(cells.iter().all(|c| c.result.cycles.raw() > 0));
    }

    #[test]
    fn e12_dram_sweep_produces_five_rows() {
        let (table, _) = e12_dram_size(Scale::test());
        assert_eq!(table.len(), 5);
    }

    #[test]
    fn e13_recovery_time_scales_with_pages() {
        let table = e13_recovery_time();
        assert_eq!(table.len(), 5);
        let text = table.render();
        assert!(text.contains("1024"));
    }

    #[test]
    fn e19_media_row_reports_nonzero_healing_counters() {
        let table = e19_media_resilience(Scale::test());
        assert_eq!(table.len(), 2, "one row media-off, one row hardened");
        let text = table.render();
        assert!(text.contains("hardened"));
        // The media-off row reports an all-zero healing ledger; the
        // hardened row must show real CRC verification work.
        let hardened = text.lines().find(|l| l.contains("hardened")).expect("row rendered");
        let crc_blocks: u64 = hardened
            .split_whitespace()
            .rev()
            .nth(1)
            .expect("CRC blocks column")
            .parse()
            .expect("numeric CRC blocks");
        assert!(crc_blocks > 0, "hardened run verified no CRCs: {hardened}");
    }

    #[test]
    fn e21_dram_ladder_reports_containment_ledger() {
        let table = e21_dram_resilience(Scale::test());
        assert_eq!(table.len(), 4, "off plus three pressure rungs");
        let text = table.render();
        let count = |row: &str, col_from_end: usize| -> u64 {
            text.lines()
                .find(|l| l.contains(row))
                .and_then(|l| l.split_whitespace().rev().nth(col_from_end))
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{row}: no numeric column {col_from_end}: {text}"))
        };
        // The off row must report an all-zero ledger.
        for col in 1..=4 {
            assert_eq!(count("off", col), 0, "disabled model produced faults: {text}");
        }
        // Flips correct inline; poison is observed and every poisoned block
        // is either refetched (clean) or quarantined (dirty), never leaked.
        assert!(count("flips 5e-2", 4) > 0, "no corrected flips: {text}");
        let poisoned = count("flips+poison 2e-1", 3);
        let refetched = count("flips+poison 2e-1", 2);
        assert!(poisoned > 0, "no poison at the top rung: {text}");
        assert!(refetched > 0, "no transparent refetches: {text}");
        assert!(refetched <= poisoned, "refetched more than poisoned: {text}");
    }

    #[test]
    fn e22_secure_ladder_reports_crypto_ledger() {
        let table = e22_secure_mode(Scale::test());
        assert_eq!(table.len(), 4, "off/hardened for ThyNVM, then for the journal baseline");
        let text = table.render();
        let count = |row: &str, col_from_end: usize| -> f64 {
            text.lines()
                .find(|l| l.starts_with(row))
                .and_then(|l| l.split_whitespace().rev().nth(col_from_end))
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{row}: no numeric column {col_from_end}: {text}"))
        };
        // The off row reports an all-zero crypto ledger.
        for col in 0..=5 {
            assert_eq!(count("off", col), 0.0, "disabled model charged crypto: {text}");
        }
        // The hardened row encrypted the write path, verified reads
        // (including MAC-authenticated recovery), and persisted counters.
        assert!(count("hardened", 5) > 0.0, "no blocks encrypted: {text}");
        assert!(count("hardened", 4) > 0.0, "no blocks verified: {text}");
        assert!(count("hardened", 3) > 0.0, "no counter persists: {text}");
        assert!(count("hardened", 0) > 0.0, "zero metadata amplification: {text}");
        // The journaling baseline under the same hardened config: encrypts
        // per commit and persists its own counter-table receipts, so its
        // metadata amplification is a nonzero, comparable number.
        for col in 0..=5 {
            assert_eq!(count("journal off", col), 0.0, "disabled journal charged crypto: {text}");
        }
        assert!(count("journal hardened", 5) > 0.0, "journal encrypted nothing: {text}");
        assert!(count("journal hardened", 3) > 0.0, "journal persisted no counters: {text}");
        assert!(count("journal hardened", 0) > 0.0, "journal amplification zero: {text}");
    }

    #[test]
    fn e23_ladder_walks_down_and_back_and_costs_nothing_quiet() {
        let table = e23_endurance(Scale::test());
        assert_eq!(table.len(), 5, "five fault postures");
        let text = table.render();
        let row = |name: &str| -> Vec<String> {
            text.lines()
                .find(|l| l.starts_with(name))
                .unwrap_or_else(|| panic!("missing row {name}: {text}"))
                .split_whitespace()
                .map(str::to_owned)
                .collect()
        };
        // The quiet twin: enabling the ladder with no firing signal is
        // cycle-identical (rel time exactly 1.000 against the off row).
        let on_quiet = row("on quiet");
        assert_eq!(on_quiet[2], "1.000", "quiet health-on must be cycle-identical: {text}");
        assert_eq!(on_quiet[3], "healthy");
        // Health off records nothing, whatever the fault pressure.
        for label in ["off quiet", "off wear"] {
            let r = row(label);
            let n = r.len();
            assert_eq!(&r[n - 6..n - 2], &["0"; 4], "{label} touched the health ledger: {text}");
        }
        // Sustained wear demotes; the cool-down epochs promote back what
        // windowed-rate signals wounded (standing levels stay down).
        let wear = row("on wear");
        assert!(wear[4].parse::<u64>().unwrap() > 0, "wear never demoted: {text}");
        let wear_ecc = row("on wear+ecc");
        assert!(wear_ecc[4].parse::<u64>().unwrap() > 0, "wear+ecc never demoted: {text}");
        let ecc_events: u64 = wear_ecc.last().unwrap().parse().unwrap();
        assert!(ecc_events > 0, "no ECC events under the armed flip rate: {text}");
        // Retries stay bounded per read; the ladder is what escalates.
        assert!(wear.last().unwrap() == "0", "no DRAM model armed in the wear row: {text}");
    }

    #[test]
    fn e24_fences_are_free_quiet_and_salvage_follows_the_rate() {
        let table = e24_persist_buffer(Scale::test());
        assert_eq!(table.len(), 4, "four buffer postures");
        let text = table.render();
        let row = |name: &str| -> Vec<String> {
            let words = name.split_whitespace().count();
            let line = text
                .lines()
                .find(|l| l.starts_with(name))
                .unwrap_or_else(|| panic!("missing row {name}: {text}"));
            // Drop the label words so columns index the same regardless of
            // how many words the posture name has.
            line.split_whitespace().skip(words).map(str::to_owned).collect()
        };
        // The disabled run never touches the ledger.
        let off = row("off");
        assert_eq!(&off[1..5], &["0"; 4], "disabled buffer charged the ledger: {text}");
        // The quiet twin: arming the buffer on a crash-free run is
        // cycle-identical, and every §4.4 fence fired over a drained buffer.
        let quiet = row("on quiet");
        assert_eq!(quiet[0], "1.000", "quiet wpq-on must be cycle-identical: {text}");
        assert!(quiet[1].parse::<u64>().unwrap() > 0, "armed run enqueued nothing: {text}");
        assert!(quiet[4].parse::<u64>().unwrap() > 0, "armed run never fenced: {text}");
        assert_eq!(quiet.last().unwrap(), "-");
        // The crash verdict is the salvage schedule's alone: rate 0.0 drops
        // the in-flight marker and rolls back, rate 1.0 finishes the drain
        // and early-commits, on the same workload and crash cycle.
        assert_eq!(row("on crash r=0.0").last().unwrap(), "rollback", "{text}");
        assert_eq!(row("on crash r=1.0").last().unwrap(), "salvaged", "{text}");
        assert!(
            row("on crash r=0.0")[3].parse::<u64>().unwrap() > 0,
            "rate-0.0 crash dropped nothing: {text}"
        );
    }

    #[test]
    fn e20_latency_grows_with_crash_depth() {
        let table = e20_recovery_latency();
        assert_eq!(table.len(), 5, "depths 0 through 4");
        let text = table.render();
        // Depth-d rows report d nested crashes and d+1 attempts; the
        // deepest storm must be strictly slower than the clean recovery.
        let micros: Vec<f64> = text
            .lines()
            .filter_map(|l| {
                let cols: Vec<&str> = l.split_whitespace().collect();
                match cols.as_slice() {
                    [depth, us, attempts, nested] => {
                        let d: u64 = depth.parse().ok()?;
                        assert_eq!(nested.parse::<u64>().ok()?, d);
                        assert_eq!(attempts.parse::<u64>().ok()?, d + 1);
                        us.parse().ok()
                    }
                    _ => None,
                }
            })
            .collect();
        assert_eq!(micros.len(), 5, "five parsed data rows: {text}");
        assert!(micros[4] > micros[0], "nested crashes must cost cycles: {text}");
        assert!(micros.windows(2).all(|w| w[1] >= w[0]), "latency not monotone: {text}");
    }

    #[test]
    fn summary_line_formats() {
        let (_, cells) = fig7_micro_exec_time(Scale::test());
        let s = summarize_vs_ideal(&cells);
        assert!(s.contains("geometric-mean"));
        assert_eq!(summarize_vs_ideal(&[]), "no comparable runs");
    }
}
