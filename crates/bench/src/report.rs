//! Plain-text table output for the experiment harness.

use std::fmt::Write as _;

/// A simple aligned text table: a header row plus data rows, rendered with
/// column padding — the harness's equivalent of a paper figure.
///
/// # Example
///
/// ```
/// use thynvm_bench::Table;
///
/// let mut t = Table::new("Figure X", &["system", "value"]);
/// t.row(&["ThyNVM".into(), format!("{:.2}", 1.049)]);
/// let text = t.render();
/// assert!(text.contains("ThyNVM"));
/// assert!(text.contains("1.05"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one data row.
    ///
    /// # Panics
    ///
    /// Panics if the row has a different arity than the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as padded plain text.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{:<width$}", cell, width = widths[i]);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        // `2 * (ncols - 1)` accounts for the two-space gaps between columns;
        // saturate so a zero-column table renders an empty rule instead of
        // underflowing (debug panic / absurd allocation in release).
        let total: usize = widths.iter().sum::<usize>() + 2 * ncols.saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }
}

/// Formats a float with sensible precision for figures.
pub fn fmt_f(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats a byte count as MB (10^6, matching the paper's axes).
pub fn fmt_mb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1e6)
}

/// A minimal JSON document model with a hand-rolled writer and parser.
///
/// The workspace deliberately carries no external JSON dependency; the
/// `BENCH_*.json` artifacts (machine-readable results the CI regression
/// gate consumes) need exactly this much JSON and no more. Integers are a
/// distinct variant so `u64` counters (simulated cycle totals) round-trip
/// bit-exactly instead of passing through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, preserved exactly (no `f64` round-trip).
    Int(u64),
    /// A finite floating-point number. Non-finite values are serialized as
    /// `null` — JSON has no NaN/Inf, and silently emitting them would
    /// produce an unparseable artifact.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved so output is deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an exact `u64`, if it is an integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the document as pretty-printed JSON (2-space indent,
    /// trailing newline), suitable for committing and diffing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    // `{:?}` is the shortest representation that round-trips;
                    // it always contains '.' or 'e' so it reparses as Num.
                    let _ = write!(out, "{n:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth + 1));
                    item.render_into(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth + 1));
                    let _ = write!(out, "\"{k}\": ");
                    v.render_into(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message (with byte offset) on malformed
    /// input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_str(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected '{lit}' at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if !float {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::Int(n));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("malformed number '{text}' at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut s = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'r') => s.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        s.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                s.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("T", &["a", "long-header"]);
        t.row(&["xxxxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("== T =="));
        assert!(lines[1].starts_with("a       "));
        assert!(lines[3].starts_with("xxxxxxxx"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Table::new("T", &["a", "b"]).row(&["only-one".into()]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new("T", &["a"]);
        assert!(t.is_empty());
        t.row(&["1".into()]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(12345.6), "12346");
        assert_eq!(fmt_f(42.25), "42.2");
        assert_eq!(fmt_f(1.0495), "1.050");
    }

    #[test]
    fn mb_formatting() {
        assert_eq!(fmt_mb(1_500_000), "1.5");
        assert_eq!(fmt_mb(0), "0.0");
    }

    #[test]
    fn zero_column_table_renders_without_underflow() {
        // Regression: `2 * (ncols - 1)` underflowed for ncols == 0, which
        // panicked in debug and asked `"-".repeat` for ~usize::MAX bytes in
        // release.
        let t = Table::new("Empty", &[]);
        let s = t.render();
        assert!(s.contains("== Empty =="));
        assert!(s.len() < 64, "separator must be empty, got {} bytes", s.len());
    }

    #[test]
    fn single_column_table_separator_matches_width() {
        let mut t = Table::new("T", &["col"]);
        t.row(&["abcdef".into()]);
        let s = t.render();
        assert!(s.lines().any(|l| l == "------"), "separator spans the one column:\n{s}");
    }

    #[test]
    fn json_roundtrip_preserves_structure() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str("x/v1".into())),
            ("count".into(), Json::Int(u64::MAX)),
            ("ratio".into(), Json::Num(0.15)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "items".into(),
                Json::Arr(vec![Json::Int(1), Json::Num(2.5), Json::Str("a\"b\\c\nd".into())]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).expect("rendered JSON parses");
        assert_eq!(back, doc);
    }

    #[test]
    fn json_u64_counters_roundtrip_exactly() {
        // f64 cannot represent all u64 values; the Int variant must.
        let big = (1u64 << 53) + 1;
        let doc = Json::Obj(vec![("cycles".into(), Json::Int(big))]);
        let back = Json::parse(&doc.render()).unwrap();
        assert_eq!(back.get("cycles").unwrap().as_u64(), Some(big));
    }

    #[test]
    fn json_nonfinite_serializes_as_null() {
        let doc = Json::Arr(vec![Json::Num(f64::NAN), Json::Num(f64::INFINITY)]);
        let text = doc.render();
        assert!(!text.contains("NaN") && !text.contains("inf"), "no NaN/Inf leakage: {text}");
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, Json::Arr(vec![Json::Null, Json::Null]));
    }

    #[test]
    fn json_parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn json_accessors() {
        let doc = Json::parse(r#"{"a": 3, "b": 1.5, "c": "s", "d": [1]}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("a").unwrap().as_f64(), Some(3.0));
        assert_eq!(doc.get("b").unwrap().as_f64(), Some(1.5));
        assert_eq!(doc.get("b").unwrap().as_u64(), None);
        assert_eq!(doc.get("c").unwrap().as_str(), Some("s"));
        assert_eq!(doc.get("d").unwrap().as_arr().map(<[Json]>::len), Some(1));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn json_parses_negative_and_exponent_numbers() {
        let doc = Json::parse("[-4, -2.5, 1e3, 2E-2]").unwrap();
        let arr = doc.as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(-4.0));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_f64(), Some(1000.0));
        assert_eq!(arr[3].as_f64(), Some(0.02));
    }
}
