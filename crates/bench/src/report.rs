//! Plain-text table output for the experiment harness.

use std::fmt::Write as _;

/// A simple aligned text table: a header row plus data rows, rendered with
/// column padding — the harness's equivalent of a paper figure.
///
/// # Example
///
/// ```
/// use thynvm_bench::Table;
///
/// let mut t = Table::new("Figure X", &["system", "value"]);
/// t.row(&["ThyNVM".into(), format!("{:.2}", 1.049)]);
/// let text = t.render();
/// assert!(text.contains("ThyNVM"));
/// assert!(text.contains("1.05"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one data row.
    ///
    /// # Panics
    ///
    /// Panics if the row has a different arity than the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as padded plain text.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{:<width$}", cell, width = widths[i]);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }
}

/// Formats a float with sensible precision for figures.
pub fn fmt_f(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats a byte count as MB (10^6, matching the paper's axes).
pub fn fmt_mb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("T", &["a", "long-header"]);
        t.row(&["xxxxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("== T =="));
        assert!(lines[1].starts_with("a       "));
        assert!(lines[3].starts_with("xxxxxxxx"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Table::new("T", &["a", "b"]).row(&["only-one".into()]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new("T", &["a"]);
        assert!(t.is_empty());
        t.row(&["1".into()]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(12345.6), "12346");
        assert_eq!(fmt_f(42.25), "42.2");
        assert_eq!(fmt_f(1.0495), "1.050");
    }

    #[test]
    fn mb_formatting() {
        assert_eq!(fmt_mb(1_500_000), "1.5");
        assert_eq!(fmt_mb(0), "0.0");
    }
}
