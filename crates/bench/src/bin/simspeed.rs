//! Simulator-throughput harness CLI.
//!
//! ```bash
//! # Measure and print (no file I/O):
//! cargo run --release -p thynvm-bench --bin simspeed
//!
//! # Append a trajectory entry to the committed artifact:
//! cargo run --release -p thynvm-bench --bin simspeed -- \
//!     --update BENCH_simspeed.json --label "PR6 flattened hot path"
//!
//! # CI regression gate (exit 1 on >15% throughput drop or any
//! # simulated-cycle drift vs the latest committed entry):
//! cargo run --release -p thynvm-bench --bin simspeed -- \
//!     --check BENCH_simspeed.json
//! ```
//!
//! `SIMSPEED_GATE_PCT` overrides the gate threshold (useful on noisy
//! shared runners); `SIMSPEED_REPEATS` overrides the best-of repeat count.

use std::process::ExitCode;

use thynvm_bench::report::Json;
use thynvm_bench::simspeed;

struct Args {
    check: Option<String>,
    update: Option<String>,
    label: String,
    repeats: u32,
    gate_pct: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        check: None,
        update: None,
        label: "unlabeled".to_owned(),
        repeats: env_u32("SIMSPEED_REPEATS", simspeed::DEFAULT_REPEATS)?,
        gate_pct: env_f64("SIMSPEED_GATE_PCT", simspeed::GATE_REGRESSION_PCT)?,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--check" => args.check = Some(value("--check")?),
            "--update" => args.update = Some(value("--update")?),
            "--label" => args.label = value("--label")?,
            "--repeats" => {
                args.repeats = value("--repeats")?.parse().map_err(|e| format!("--repeats: {e}"))?;
            }
            other => return Err(format!("unknown argument '{other}' (see --check/--update/--label/--repeats)")),
        }
    }
    if args.check.is_some() && args.update.is_some() {
        return Err("--check and --update are mutually exclusive".to_owned());
    }
    Ok(args)
}

fn env_u32(name: &str, default: u32) -> Result<u32, String> {
    match std::env::var(name) {
        Ok(v) => v.parse().map_err(|e| format!("{name}: {e}")),
        Err(_) => Ok(default),
    }
}

fn env_f64(name: &str, default: f64) -> Result<f64, String> {
    match std::env::var(name) {
        Ok(v) => v.parse().map_err(|e| format!("{name}: {e}")),
        Err(_) => Ok(default),
    }
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    eprintln!("simspeed: measuring {} repeats per case...", args.repeats);
    let results = simspeed::run_all(args.repeats);
    simspeed::table(&results).print();

    if let Some(path) = &args.check {
        let baseline = load(path)?;
        let lines = simspeed::check_against(&baseline, &results, args.gate_pct)?;
        let mut ok = true;
        for line in &lines {
            println!("{} {}: {}", if line.ok { "PASS" } else { "FAIL" }, line.name, line.message);
            ok &= line.ok;
        }
        return Ok(ok);
    }

    if let Some(path) = &args.update {
        let existing = match std::fs::read_to_string(path) {
            Ok(text) => Some(Json::parse(&text).map_err(|e| format!("{path}: {e}"))?),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(format!("{path}: {e}")),
        };
        let doc = simspeed::append_entry(existing.as_ref(), &args.label, &results)?;
        std::fs::write(path, doc.render()).map_err(|e| format!("{path}: {e}"))?;
        println!("appended entry '{}' to {path}", args.label);
    }
    Ok(true)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("simspeed: gate FAILED");
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("simspeed: error: {msg}");
            ExitCode::FAILURE
        }
    }
}
