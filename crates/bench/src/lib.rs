//! Experiment harness reproducing every table and figure of the ThyNVM
//! paper's evaluation (§5).
//!
//! * [`runner`] — builds any evaluated memory system behind one enum and
//!   drives it with the in-order core + cache hierarchy, exactly as every
//!   system sees the same workload in the paper's gem5 setup.
//! * [`report`] — plain-text table formatting for the figure/table output.
//! * [`experiments`] — one entry point per paper artifact (Figure 7 through
//!   Figure 12, Table 1, Table 2, plus the §5.3 overlap ablation), each
//!   scalable so unit tests run in milliseconds and `cargo bench` runs at
//!   full scale.
//! * [`simspeed`] — measures the *simulator's own* throughput and maintains
//!   the `BENCH_simspeed.json` trajectory behind the CI regression gate.
//!
//! Run all experiments with:
//!
//! ```bash
//! cargo bench -p thynvm-bench
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod report;
pub mod runner;
pub mod simspeed;

pub use experiments::Scale;
pub use report::{Json, Table};
pub use runner::{RunResult, SystemKind};
