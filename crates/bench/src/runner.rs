//! System construction and trace execution.

use thynvm_baselines::{IdealDram, IdealNvm, Journaling, ShadowPaging};
use thynvm_cache::{CoreModel, CoreStats};
use thynvm_core::ThyNvm;
use thynvm_types::{CkptMode, Cycle, MemStats, MemorySystem, SystemConfig, TraceEvent};

/// Every memory system evaluated anywhere in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// DRAM-only with free crash consistency (§5.1 system 1).
    IdealDram,
    /// NVM-only with free crash consistency (§5.1 system 2).
    IdealNvm,
    /// Hybrid with redo journaling (§5.1 system 3).
    Journal,
    /// Hybrid with page-granularity copy-on-write (§5.1 system 4).
    Shadow,
    /// The paper's contribution: dual-scheme overlapped checkpointing.
    ThyNvm,
    /// Ablation: uniform cache-block granularity (Table 1 quadrant ❸).
    ThyNvmBlockOnly,
    /// Ablation: uniform page granularity (Table 1 quadrant ❷).
    ThyNvmPageOnly,
    /// Ablation: dual-scheme but stop-the-world (Figure 3a epoch model).
    ThyNvmNoOverlap,
}

impl SystemKind {
    /// The five systems of the main evaluation figures, in the paper's
    /// legend order.
    pub const fn paper_five() -> [SystemKind; 5] {
        [
            SystemKind::IdealDram,
            SystemKind::IdealNvm,
            SystemKind::Journal,
            SystemKind::Shadow,
            SystemKind::ThyNvm,
        ]
    }

    /// Display name matching the paper's figure legends.
    pub const fn as_str(self) -> &'static str {
        match self {
            SystemKind::IdealDram => "Ideal DRAM",
            SystemKind::IdealNvm => "Ideal NVM",
            SystemKind::Journal => "Journal",
            SystemKind::Shadow => "Shadow",
            SystemKind::ThyNvm => "ThyNVM",
            SystemKind::ThyNvmBlockOnly => "Block-only",
            SystemKind::ThyNvmPageOnly => "Page-only",
            SystemKind::ThyNvmNoOverlap => "No-overlap",
        }
    }

    /// Instantiates the system with `cfg`.
    pub fn build(self, cfg: SystemConfig) -> Box<dyn MemorySystem> {
        match self {
            SystemKind::IdealDram => Box::new(IdealDram::new(cfg)),
            SystemKind::IdealNvm => Box::new(IdealNvm::new(cfg)),
            SystemKind::Journal => Box::new(Journaling::new(cfg)),
            SystemKind::Shadow => Box::new(ShadowPaging::new(cfg)),
            SystemKind::ThyNvm => Box::new(ThyNvm::new(cfg)),
            SystemKind::ThyNvmBlockOnly => {
                let mut cfg = cfg;
                cfg.thynvm.mode = CkptMode::BlockOnly;
                Box::new(ThyNvm::new(cfg))
            }
            SystemKind::ThyNvmPageOnly => {
                let mut cfg = cfg;
                cfg.thynvm.mode = CkptMode::PageOnly;
                Box::new(ThyNvm::new(cfg))
            }
            SystemKind::ThyNvmNoOverlap => {
                let mut cfg = cfg;
                cfg.thynvm.overlap = false;
                Box::new(ThyNvm::new(cfg))
            }
        }
    }
}

/// Outcome of one workload run on one system.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// System display name.
    pub system: &'static str,
    /// Total simulated execution time (including drained checkpoint work).
    pub cycles: Cycle,
    /// Instructions retired by the core model.
    pub instructions: u64,
    /// Memory-system statistics.
    pub mem: MemStats,
    /// Core statistics (stalls, flushes).
    pub core: CoreStats,
}

impl RunResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == Cycle::ZERO {
            0.0
        } else {
            self.instructions as f64 / self.cycles.raw() as f64
        }
    }

    /// Execution time relative to `baseline` (1.0 = same).
    pub fn relative_time(&self, baseline: &RunResult) -> f64 {
        if baseline.cycles == Cycle::ZERO {
            0.0
        } else {
            self.cycles.raw() as f64 / baseline.cycles.raw() as f64
        }
    }

    /// Share of execution time the application was *stalled* on checkpoint
    /// work, in percent (the Figure 8 "% exec. time spent on ckpt" series).
    pub fn ckpt_stall_share(&self) -> f64 {
        if self.cycles == Cycle::ZERO {
            0.0
        } else {
            100.0 * self.mem.ckpt_stall_cycles.raw() as f64 / self.cycles.raw() as f64
        }
    }

    /// Transactions per second given `transactions` completed in this run.
    pub fn throughput_tps(&self, transactions: u64) -> f64 {
        let secs = self.cycles.as_secs();
        if secs == 0.0 {
            0.0
        } else {
            transactions as f64 / secs
        }
    }

    /// Write bandwidth in MB/s: NVM writes for persistent systems, DRAM
    /// writes for the DRAM-only baseline (Figure 10's convention).
    pub fn write_bandwidth_mbps(&self) -> f64 {
        if self.system == "Ideal DRAM" {
            self.mem.dram_write_bandwidth_mbps(self.cycles)
        } else {
            self.mem.nvm_write_bandwidth_mbps(self.cycles)
        }
    }
}

/// Runs `events` through the full platform (in-order core + three-level
/// cache hierarchy + the chosen memory system), honoring the checkpoint
/// handshake, and drains all deferred work at the end.
pub fn run_with_caches<I>(kind: SystemKind, cfg: SystemConfig, events: I) -> RunResult
where
    I: IntoIterator<Item = TraceEvent>,
{
    let mut sys = kind.build(cfg);
    let mut core = CoreModel::new(cfg.cache);
    let cycles = core.run_trace(events, sys.as_mut());
    RunResult {
        system: kind.as_str(),
        cycles,
        instructions: core.stats().instructions,
        mem: sys.stats().clone(),
        core: core.stats().clone(),
    }
}

/// Runs `events` directly against the memory system (no caches): every
/// access reaches the controller. Used for controller-focused experiments
/// and tests.
pub fn run_raw<I>(kind: SystemKind, cfg: SystemConfig, events: I) -> RunResult
where
    I: IntoIterator<Item = TraceEvent>,
{
    let mut sys = kind.build(cfg);
    let mut now = Cycle::ZERO;
    let mut instructions = 0u64;
    for e in events {
        instructions += e.instructions();
        now += Cycle::new(u64::from(e.gap));
        now = sys.access(&e.req, now);
        if sys.checkpoint_due(now) {
            now = sys.begin_checkpoint(now, &[]);
        }
    }
    let cycles = sys.drain(now);
    RunResult {
        system: kind.as_str(),
        cycles,
        instructions,
        mem: sys.stats().clone(),
        core: CoreStats::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thynvm_types::{MemRequest, PhysAddr};

    fn small_trace(n: u64) -> Vec<TraceEvent> {
        (0..n)
            .map(|i| {
                let addr = PhysAddr::new((i * 64) % (1 << 20));
                let req = if i % 2 == 0 {
                    MemRequest::write(addr, 64)
                } else {
                    MemRequest::read(addr, 64)
                };
                TraceEvent::new(4, req)
            })
            .collect()
    }

    #[test]
    fn all_systems_build_and_run() {
        let cfg = SystemConfig::small_test();
        for kind in [
            SystemKind::IdealDram,
            SystemKind::IdealNvm,
            SystemKind::Journal,
            SystemKind::Shadow,
            SystemKind::ThyNvm,
            SystemKind::ThyNvmBlockOnly,
            SystemKind::ThyNvmPageOnly,
            SystemKind::ThyNvmNoOverlap,
        ] {
            let res = run_with_caches(kind, cfg, small_trace(2_000));
            assert!(res.cycles > Cycle::ZERO, "{} produced no time", res.system);
            assert_eq!(res.system, kind.as_str());
            assert!(res.ipc() > 0.0);
        }
    }

    #[test]
    fn ideal_dram_is_fastest() {
        let cfg = SystemConfig::small_test();
        let dram = run_with_caches(SystemKind::IdealDram, cfg, small_trace(5_000));
        for kind in [SystemKind::IdealNvm, SystemKind::Journal, SystemKind::Shadow, SystemKind::ThyNvm]
        {
            let other = run_with_caches(kind, cfg, small_trace(5_000));
            assert!(
                other.relative_time(&dram) >= 0.999,
                "{} beat Ideal DRAM: {:.3}",
                other.system,
                other.relative_time(&dram)
            );
        }
    }

    #[test]
    fn raw_runner_reaches_controller_every_access() {
        let cfg = SystemConfig::small_test();
        let res = run_raw(SystemKind::ThyNvm, cfg, small_trace(100));
        assert_eq!(res.mem.total_accesses(), 100);
    }

    #[test]
    fn paper_five_order() {
        let names: Vec<_> = SystemKind::paper_five().iter().map(|k| k.as_str()).collect();
        assert_eq!(names, ["Ideal DRAM", "Ideal NVM", "Journal", "Shadow", "ThyNVM"]);
    }

    #[test]
    fn run_result_metrics() {
        let cfg = SystemConfig::small_test();
        let res = run_with_caches(SystemKind::ThyNvm, cfg, small_trace(3_000));
        assert!(res.ckpt_stall_share() >= 0.0);
        assert!(res.throughput_tps(1_000) > 0.0);
        assert!(res.write_bandwidth_mbps() >= 0.0);
        let base = res.clone();
        assert!((res.relative_time(&base) - 1.0).abs() < 1e-12);
    }
}
