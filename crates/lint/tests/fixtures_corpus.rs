//! The fixture corpus: one known-bad snippet per rule plus a clean
//! near-miss file, pinned to exact rule IDs and line numbers, and the
//! baseline round trip (suppression, stale detection, justification
//! enforcement) through the public `run()` entry point.
//!
//! The fixtures live under `tests/fixtures/`, which [`thynvm_lint::run`]
//! never descends into — they are lint *inputs*, not workspace code.

use thynvm_lint::baseline;
use thynvm_lint::rules::{check_all, Diagnostic};
use thynvm_lint::source::FileIndex;

fn lint_one(rel: &str, src: &str) -> Vec<Diagnostic> {
    check_all(&[FileIndex::parse(rel, src)])
}

/// (rule, line) pairs in the engine's deterministic order.
fn keyed(diags: &[Diagnostic]) -> Vec<(&'static str, u32)> {
    diags.iter().map(|d| (d.rule, d.line)).collect()
}

#[test]
fn l1_fixture_flags_the_rogue_store_write() {
    let diags =
        lint_one("crates/core/src/rogue.rs", include_str!("fixtures/l1_rogue_store.rs"));
    assert_eq!(keyed(&diags), vec![("L1", 10)], "{diags:?}");
    assert!(diags[0].msg.contains("committed.write"), "{}", diags[0].msg);
}

#[test]
fn l2_fixture_flags_every_panic_class_in_scope_only() {
    let diags =
        lint_one("crates/core/src/replay.rs", include_str!("fixtures/l2_panicky_recovery.rs"));
    // Literal index, unwrap, bare expect, panic! in the name-scoped fn;
    // unwrap in the annotation-scoped fn; nothing from `out_of_scope`.
    assert_eq!(
        keyed(&diags),
        vec![("L2", 6), ("L2", 7), ("L2", 8), ("L2", 10), ("L2", 17)],
        "{diags:?}"
    );
}

#[test]
fn l3_fixture_flags_dead_and_unverified_counters() {
    let diags = lint_one("crates/types/src/stats.rs", include_str!("fixtures/l3_stats.rs"));
    // `dead_counter` (line 7) is both dead (only `merge` writes it) and
    // unverified; `untested_counter` (line 8) is mutated but never asserted.
    assert_eq!(keyed(&diags), vec![("L3", 7), ("L3", 7), ("L3", 8)], "{diags:?}");
    assert!(diags.iter().any(|d| d.msg.contains("dead counter `MemStats::dead_counter`")));
    assert!(diags.iter().any(|d| d.msg.contains("unverified counter `MemStats::dead_counter`")));
    assert!(diags.iter().any(|d| d.msg.contains("unverified counter `MemStats::untested_counter`")));
}

#[test]
fn l4_fixture_flags_unconstructed_and_untested_variants() {
    let files = [
        FileIndex::parse("crates/types/src/error.rs", include_str!("fixtures/l4_error_enum.rs")),
        FileIndex::parse("crates/core/src/faults.rs", include_str!("fixtures/l4_error_user.rs")),
    ];
    let diags = check_all(&files);
    // `NeverBuilt` (line 7) has neither a production construction nor a
    // test match; `NeverTested` (line 8) is built but never matched.
    assert_eq!(keyed(&diags), vec![("L4", 7), ("L4", 7), ("L4", 8)], "{diags:?}");
    assert!(diags.iter().all(|d| d.file == "crates/types/src/error.rs"));
    assert!(diags[2].msg.contains("`Error::NeverTested` is never matched"), "{}", diags[2].msg);
}

#[test]
fn l5_fixture_flags_the_unchecked_numeric_field_only() {
    let diags = lint_one("crates/types/src/config.rs", include_str!("fixtures/l5_config.rs"));
    assert_eq!(keyed(&diags), vec![("L5", 7)], "{diags:?}");
    assert!(diags[0].msg.contains("`ThyNvmConfig::unchecked_knob`"), "{}", diags[0].msg);
}

#[test]
fn l6_fixture_flags_both_hand_rolled_backoff_loops() {
    let diags =
        lint_one("crates/core/src/spinner.rs", include_str!("fixtures/l6_manual_backoff.rs"));
    // Knob-on-the-left and multiplier-on-the-left variants; the policy
    // pass-through and the test module's by-hand schedule stay clean.
    assert_eq!(keyed(&diags), vec![("L6", 8), ("L6", 17)], "{diags:?}");
    assert!(diags[0].msg.contains("retry_backoff_ns"), "{}", diags[0].msg);
    assert!(diags[1].msg.contains("refetch_backoff_ns"), "{}", diags[1].msg);

    // The same multiplication inside the policy's own file is sanctioned.
    let diags =
        lint_one("crates/types/src/retry.rs", include_str!("fixtures/l6_manual_backoff.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn clean_fixture_produces_no_diagnostics() {
    let diags = lint_one("crates/core/src/clean.rs", include_str!("fixtures/clean.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn end_to_end_run_suppresses_with_baseline_and_reports_stale_entries() {
    let root = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint_e2e");
    let src_dir = root.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).expect("create fixture tree");
    std::fs::write(src_dir.join("rogue.rs"), include_str!("fixtures/l1_rogue_store.rs"))
        .expect("write fixture");

    // Unsuppressed: the violation fails the run.
    let report = thynvm_lint::run(&root, &[]).expect("lint run");
    assert!(report.is_failure());
    assert_eq!(report.files_scanned, 1);
    assert_eq!(keyed(&report.violations), vec![("L1", 10)]);

    // A justified baseline entry suppresses it: clean.
    let entries = baseline::parse(
        "L1 crates/core/src/rogue.rs:10 — fixture: sealed by the commit record\n",
    )
    .expect("valid baseline");
    let report = thynvm_lint::run(&root, &entries).expect("lint run");
    assert!(!report.is_failure(), "{:?}", report.violations);

    // A stale entry fails the run even when no live violation remains.
    let entries = baseline::parse(
        "L1 crates/core/src/rogue.rs:10 — fixture: sealed by the commit record\n\
         L2 crates/core/src/gone.rs:3 — the file this covered was deleted\n",
    )
    .expect("valid baseline");
    let report = thynvm_lint::run(&root, &entries).expect("lint run");
    assert!(report.is_failure());
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.stale.len(), 1);
    assert_eq!(report.stale[0].rule, "L0");
    assert_eq!(report.stale[0].line, 2, "stale diagnostic points at the baseline line");
}

#[test]
fn baseline_rejects_entries_without_a_justification() {
    let err = baseline::parse("L1 crates/core/src/rogue.rs:10\n").expect_err("must reject");
    assert!(err.msg.contains("justification"), "{err}");
    assert!(err.to_string().starts_with("lint.baseline:1:"), "{err}");
    // A separator with nothing after it is still no justification.
    assert!(baseline::parse("L1 crates/core/src/rogue.rs:10 —\n").is_err());
}
