//! The fixture corpus: one known-bad snippet per rule plus a clean
//! near-miss file, pinned to exact rule IDs and line numbers, and the
//! baseline round trip (suppression, stale detection, justification
//! enforcement) through the public `run()` entry point.
//!
//! The fixtures live under `tests/fixtures/`, which [`thynvm_lint::run`]
//! never descends into — they are lint *inputs*, not workspace code.

use thynvm_lint::baseline;
use thynvm_lint::rules::{check_all, Diagnostic};
use thynvm_lint::source::FileIndex;

fn lint_one(rel: &str, src: &str) -> Vec<Diagnostic> {
    check_all(&[FileIndex::parse(rel, src)])
}

/// (rule, line) pairs in the engine's deterministic order.
fn keyed(diags: &[Diagnostic]) -> Vec<(&'static str, u32)> {
    diags.iter().map(|d| (d.rule, d.line)).collect()
}

#[test]
fn l1_fixture_flags_the_rogue_store_write() {
    let diags =
        lint_one("crates/core/src/rogue.rs", include_str!("fixtures/l1_rogue_store.rs"));
    assert_eq!(keyed(&diags), vec![("L1", 10)], "{diags:?}");
    assert!(diags[0].msg.contains("committed.write"), "{}", diags[0].msg);
}

#[test]
fn l2_fixture_flags_every_panic_class_in_scope_only() {
    let diags =
        lint_one("crates/core/src/replay.rs", include_str!("fixtures/l2_panicky_recovery.rs"));
    // Literal index, unwrap, bare expect, panic! in the name-scoped fn;
    // unwrap in the annotation-scoped fn; nothing from `out_of_scope`.
    assert_eq!(
        keyed(&diags),
        vec![("L2", 6), ("L2", 7), ("L2", 8), ("L2", 10), ("L2", 17)],
        "{diags:?}"
    );
}

#[test]
fn l3_fixture_flags_dead_and_unverified_counters() {
    let diags = lint_one("crates/types/src/stats.rs", include_str!("fixtures/l3_stats.rs"));
    // `dead_counter` (line 7) is both dead (only `merge` writes it) and
    // unverified; `untested_counter` (line 8) is mutated but never asserted.
    assert_eq!(keyed(&diags), vec![("L3", 7), ("L3", 7), ("L3", 8)], "{diags:?}");
    assert!(diags.iter().any(|d| d.msg.contains("dead counter `MemStats::dead_counter`")));
    assert!(diags.iter().any(|d| d.msg.contains("unverified counter `MemStats::dead_counter`")));
    assert!(diags.iter().any(|d| d.msg.contains("unverified counter `MemStats::untested_counter`")));
}

#[test]
fn l4_fixture_flags_unconstructed_and_untested_variants() {
    let files = [
        FileIndex::parse("crates/types/src/error.rs", include_str!("fixtures/l4_error_enum.rs")),
        FileIndex::parse("crates/core/src/faults.rs", include_str!("fixtures/l4_error_user.rs")),
    ];
    let diags = check_all(&files);
    // `NeverBuilt` (line 7) has neither a production construction nor a
    // test match; `NeverTested` (line 8) is built but never matched.
    assert_eq!(keyed(&diags), vec![("L4", 7), ("L4", 7), ("L4", 8)], "{diags:?}");
    assert!(diags.iter().all(|d| d.file == "crates/types/src/error.rs"));
    assert!(diags[2].msg.contains("`Error::NeverTested` is never matched"), "{}", diags[2].msg);
}

#[test]
fn l5_fixture_flags_the_unchecked_numeric_field_only() {
    let diags = lint_one("crates/types/src/config.rs", include_str!("fixtures/l5_config.rs"));
    assert_eq!(keyed(&diags), vec![("L5", 7)], "{diags:?}");
    assert!(diags[0].msg.contains("`ThyNvmConfig::unchecked_knob`"), "{}", diags[0].msg);
}

#[test]
fn l6_fixture_flags_both_hand_rolled_backoff_loops() {
    let diags =
        lint_one("crates/core/src/spinner.rs", include_str!("fixtures/l6_manual_backoff.rs"));
    // Knob-on-the-left and multiplier-on-the-left variants; the policy
    // pass-through and the test module's by-hand schedule stay clean.
    assert_eq!(keyed(&diags), vec![("L6", 8), ("L6", 17)], "{diags:?}");
    assert!(diags[0].msg.contains("retry_backoff_ns"), "{}", diags[0].msg);
    assert!(diags[1].msg.contains("refetch_backoff_ns"), "{}", diags[1].msg);

    // The same multiplication inside the policy's own file is sanctioned.
    let diags =
        lint_one("crates/types/src/retry.rs", include_str!("fixtures/l6_manual_backoff.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l7_fixture_flags_post_seal_backup_write_and_security_call() {
    let diags =
        lint_one("crates/core/src/commitpath.rs", include_str!("fixtures/l7_post_seal_backup.rs"));
    // Direct backup write after the line-8 commit-record seal, then a call
    // whose transitive effects touch the security root. The near-miss
    // (commit-record read + WAL-sealed spare remap after the seal) is silent.
    assert_eq!(keyed(&diags), vec![("L7", 9), ("L7", 10)], "{diags:?}");
    assert!(diags[0].msg.contains("`backup` write after the commit-record seal"), "{}", diags[0].msg);
    assert!(diags[1].msg.contains("`stamp_root`"), "{}", diags[1].msg);
    assert!(diags[1].msg.contains("security_root"), "{}", diags[1].msg);
}

#[test]
fn l8_fixture_flags_transitive_unsealed_recovery_write() {
    let diags =
        lint_one("crates/core/src/redopath.rs", include_str!("fixtures/l8_unsealed_recovery.rs"));
    // The write lives in `restore_ptt`, reached only through the
    // `recover_tables` entry point — the diagnostic proves transitivity.
    // The WAL-bracketed near-miss `redo_remap` is silent.
    assert_eq!(keyed(&diags), vec![("L8", 9)], "{diags:?}");
    assert!(diags[0].msg.contains("`restore_ptt`"), "{}", diags[0].msg);

    // Outside the recovery machinery crates the same code is not an L8
    // entry (a bench fn *measuring* recovery may checkpoint freely).
    let diags =
        lint_one("crates/bench/src/redopath.rs", include_str!("fixtures/l8_unsealed_recovery.rs"));
    assert!(diags.iter().all(|d| d.rule != "L8"), "{diags:?}");
}

#[test]
fn l8_mutation_moving_the_seal_before_the_payload_is_caught() {
    // Mutate the *clean* near-miss: move the payload write of `redo_remap`
    // after the WAL seal. The bracket no longer covers it, so the rule
    // must produce a fresh diagnostic at the payload's new line.
    let src = include_str!("fixtures/l8_unsealed_recovery.rs");
    let mut lines: Vec<&str> = src.lines().collect();
    let payload = lines.iter().position(|l| l.contains("// payload")).expect("payload line");
    let counter = lines.iter().position(|l| l.contains("// seal counter")).expect("seal line");
    assert!(payload < counter, "fixture starts correctly bracketed");
    let moved = lines.remove(payload);
    lines.insert(counter, moved); // counter shifted down by the removal
    let mutated = lines.join("\n");
    // The payload now sits at 0-based index `counter` (one past the seal
    // counter, which slid down when the payload was removed above it).
    let new_line = u32::try_from(counter + 1).expect("small fixture");

    let diags = lint_one("crates/core/src/redopath.rs", &mutated);
    assert_eq!(keyed(&diags), vec![("L8", 9), ("L8", new_line)], "{diags:?}");
    assert!(diags[1].msg.contains("`redo_remap`"), "{}", diags[1].msg);
}

#[test]
fn l9_fixture_flags_interior_mutability_and_shared_borrow_store_write() {
    let diags = lint_one(
        "crates/mem/src/smuggle.rs",
        include_str!("fixtures/l9_interior_mutability.rs"),
    );
    // `RefCell` import at line 4, store mutation behind `&self` at line 7.
    // The `&mut self` near-miss and the test-module `Cell` are silent.
    assert_eq!(keyed(&diags), vec![("L9", 4), ("L9", 7)], "{diags:?}");
    assert!(diags[0].msg.contains("RefCell"), "{}", diags[0].msg);
    assert!(diags[1].msg.contains("`peek_write`"), "{}", diags[1].msg);

    // The same file outside the audited crates is out of scope for the
    // interior-mutability scan (the `&self` store write stays flagged:
    // store confinement is workspace-wide; the raw-store L1 rule fires
    // there too, which is its own business).
    let diags = lint_one(
        "crates/bench/src/smuggle.rs",
        include_str!("fixtures/l9_interior_mutability.rs"),
    );
    let l9: Vec<_> = diags.iter().filter(|d| d.rule == "L9").map(|d| d.line).collect();
    assert_eq!(l9, vec![7], "{diags:?}");
}

#[test]
fn l10_fixture_flags_unfenced_commit_and_root_persists() {
    let diags = lint_one(
        "crates/core/src/fencepath.rs",
        include_str!("fixtures/l10_unfenced_commit.rs"),
    );
    // Unfenced seal at line 6, unfenced security root at line 10. The
    // fence-dominated near-miss and the plain-metadata write are silent.
    assert_eq!(keyed(&diags), vec![("L10", 6), ("L10", 10)], "{diags:?}");
    assert!(diags[0].msg.contains("commit_record"), "{}", diags[0].msg);
    assert!(diags[1].msg.contains("security_root"), "{}", diags[1].msg);

    // Baselines have no persist buffer: the same file there is L10-silent.
    let diags = lint_one(
        "crates/baselines/src/fencepath.rs",
        include_str!("fixtures/l10_unfenced_commit.rs"),
    );
    assert!(diags.iter().all(|d| d.rule != "L10"), "{diags:?}");
}

#[test]
fn l10_mutation_moving_the_fence_after_the_seal_is_caught() {
    // Mutate the *clean* near-miss: move `seal_with_fence`'s fence below
    // its commit-record persist. The seal is no longer fence-dominated, so
    // the rule must produce a fresh diagnostic at the seal's new line.
    let src = include_str!("fixtures/l10_unfenced_commit.rs");
    let mut lines: Vec<&str> = src.lines().collect();
    let fence = lines.iter().position(|l| l.contains("// fence")).expect("fence line");
    let seal = lines.iter().position(|l| l.contains("// seal")).expect("seal line");
    assert!(fence < seal, "fixture starts fence-dominated");
    let moved = lines.remove(fence);
    lines.insert(seal, moved); // seal slid up by the removal
    let mutated = lines.join("\n");
    // The seal now sits one line higher; 0-based index `seal - 1`.
    let new_line = u32::try_from(seal).expect("small fixture");

    let diags = lint_one("crates/core/src/fencepath.rs", &mutated);
    assert_eq!(keyed(&diags), vec![("L10", 6), ("L10", 10), ("L10", new_line)], "{diags:?}");
    assert!(diags[2].msg.contains("seal_with_fence"), "{}", diags[2].msg);
}

#[test]
fn clean_fixture_produces_no_diagnostics() {
    let diags = lint_one("crates/core/src/clean.rs", include_str!("fixtures/clean.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn effects_dump_is_deterministic_on_the_real_workspace() {
    let here = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = thynvm_lint::find_root(here).expect("workspace root above crates/lint");
    let first = thynvm_lint::effects_dump(&root).expect("effects dump");
    let second = thynvm_lint::effects_dump(&root).expect("effects dump");
    assert_eq!(first, second, "fixpoint + rendering must be byte-identical across runs");
    // The dump carries the load-bearing rows the ordering rules rest on.
    assert!(first.contains("commit_record"), "checkpoint seal visible in the dump");
    assert!(first.contains("backup_wal"), "WAL discipline visible in the dump");
}

#[test]
fn repo_baseline_entries_are_all_live() {
    // Stale-baseline hygiene: every committed suppression must still match
    // a real diagnostic — in particular the L5 stuck_at_threshold entry.
    let here = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = thynvm_lint::find_root(here).expect("workspace root above crates/lint");
    let text = std::fs::read_to_string(root.join("lint.baseline")).expect("baseline readable");
    let entries = baseline::parse(&text).expect("committed baseline parses");
    assert!(
        entries.iter().any(|e| e.rule == "L5"
            && e.file == "crates/types/src/config.rs"
            && e.justification.contains("stuck_at_threshold")),
        "the stuck_at_threshold suppression is still present: {entries:?}"
    );
    let report = thynvm_lint::run(&root, &entries).expect("lint run");
    assert!(report.stale.is_empty(), "stale baseline entries: {:?}", report.stale);
    assert!(report.violations.is_empty(), "workspace must lint clean: {:?}", report.violations);
}

#[test]
fn end_to_end_run_suppresses_with_baseline_and_reports_stale_entries() {
    let root = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint_e2e");
    let src_dir = root.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).expect("create fixture tree");
    std::fs::write(src_dir.join("rogue.rs"), include_str!("fixtures/l1_rogue_store.rs"))
        .expect("write fixture");

    // Unsuppressed: the violation fails the run.
    let report = thynvm_lint::run(&root, &[]).expect("lint run");
    assert!(report.is_failure());
    assert_eq!(report.files_scanned, 1);
    assert_eq!(keyed(&report.violations), vec![("L1", 10)]);

    // A justified baseline entry suppresses it: clean.
    let entries = baseline::parse(
        "L1 crates/core/src/rogue.rs:10 — fixture: sealed by the commit record\n",
    )
    .expect("valid baseline");
    let report = thynvm_lint::run(&root, &entries).expect("lint run");
    assert!(!report.is_failure(), "{:?}", report.violations);

    // A stale entry fails the run even when no live violation remains.
    let entries = baseline::parse(
        "L1 crates/core/src/rogue.rs:10 — fixture: sealed by the commit record\n\
         L2 crates/core/src/gone.rs:3 — the file this covered was deleted\n",
    )
    .expect("valid baseline");
    let report = thynvm_lint::run(&root, &entries).expect("lint run");
    assert!(report.is_failure());
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.stale.len(), 1);
    assert_eq!(report.stale[0].rule, "L0");
    assert_eq!(report.stale[0].line, 2, "stale diagnostic points at the baseline line");
}

#[test]
fn cli_emits_json_and_github_annotations_and_distinguishes_exit_codes() {
    let root = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint_cli");
    let _ = std::fs::remove_dir_all(&root); // stale state from prior runs
    let src_dir = root.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).expect("create fixture tree");
    std::fs::write(src_dir.join("rogue.rs"), include_str!("fixtures/l1_rogue_store.rs"))
        .expect("write fixture");
    let bin = env!("CARGO_BIN_EXE_thynvm-lint");

    // Violations: exit 1, with JSON lines and problem-matcher annotations.
    let out = std::process::Command::new(bin)
        .arg(&root)
        .args(["--json", "--github"])
        .output()
        .expect("run thynvm-lint");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    assert!(
        stdout.contains(r#"{"rule":"L1","file":"crates/core/src/rogue.rs","line":10,"msg":""#),
        "json diagnostic present: {stdout}"
    );
    assert!(
        stdout.contains("::error file=crates/core/src/rogue.rs,line=10,title=thynvm-lint L1::"),
        "github annotation present: {stdout}"
    );

    // A baseline entry without a justification: exit 2 (malformed), before
    // any linting happens.
    std::fs::write(root.join("lint.baseline"), "L1 crates/core/src/rogue.rs:10\n")
        .expect("write baseline");
    let out = std::process::Command::new(bin).arg(&root).output().expect("run thynvm-lint");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8(out.stderr).expect("utf8 stderr");
    assert!(stderr.contains("justification"), "{stderr}");

    // The justified entry suppresses the violation: exit 0.
    std::fs::write(
        root.join("lint.baseline"),
        "L1 crates/core/src/rogue.rs:10 — fixture: sealed by the commit record\n",
    )
    .expect("write baseline");
    let out = std::process::Command::new(bin).arg(&root).output().expect("run thynvm-lint");
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    // `--effects` prints the dump and exits 0 regardless of diagnostics.
    let out = std::process::Command::new(bin)
        .arg(&root)
        .arg("--effects")
        .output()
        .expect("run thynvm-lint --effects");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let dump = String::from_utf8(out.stdout).expect("utf8 stdout");
    assert!(
        dump.contains("crates/core/src/rogue.rs::sneak: store"),
        "store effect of the rogue fixture listed: {dump}"
    );
}

#[test]
fn baseline_rejects_entries_without_a_justification() {
    let err = baseline::parse("L1 crates/core/src/rogue.rs:10\n").expect_err("must reject");
    assert!(err.msg.contains("justification"), "{err}");
    assert!(err.to_string().starts_with("lint.baseline:1:"), "{err}");
    // A separator with nothing after it is still no justification.
    assert!(baseline::parse("L1 crates/core/src/rogue.rs:10 —\n").is_err());
}
