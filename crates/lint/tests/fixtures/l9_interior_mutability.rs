//! L9 fixture: interior mutability and unconfined store effects smuggled
//! into the audited crates. Parsed as `crates/mem/src/smuggle.rs`.

use std::cell::RefCell;

pub fn peek_write(&self) {
    self.committed.write(addr, bytes);
}

/// Near-miss: exclusive-borrow store mutation is the sanctioned shape.
pub fn confined_write(&mut self) {
    self.committed.write(addr, bytes);
}

#[cfg(test)]
mod tests {
    use std::cell::Cell;

    #[test]
    fn cells_in_tests_are_fine() {
        let c = Cell::new(0u32);
        c.set(1);
    }
}
