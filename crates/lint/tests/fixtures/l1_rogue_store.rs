//! Known-bad: a raw `SparseStore` write outside `crates/mem` and the
//! WAL/commit-sealed allowlist. Parsed as `crates/core/src/rogue.rs`.

pub struct Rogue {
    committed: SparseStore,
}

impl Rogue {
    pub fn sneak(&mut self, addr: u64, bytes: &[u8]) {
        self.committed.write(addr, bytes);
    }
}
