//! Known-bad: `Error` variants missing production construction or test
//! coverage (see `l4_error_user.rs` for the uses). Parsed as
//! `crates/types/src/error.rs`.

pub enum Error {
    Covered,
    NeverBuilt,
    NeverTested,
}
