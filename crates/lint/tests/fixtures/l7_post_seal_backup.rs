//! L7 fixture: backup/security effects after the commit-record seal.
//! Parsed as `crates/core/src/commitpath.rs`. The seals are fenced so the
//! file stays L10-clean and the diagnostics pin L7 alone.

pub fn checkpoint_commit(&mut self, t: u64) -> u64 {
    let t = self.nvm.access(self.space.backup(8192), AccessKind::Write, 64, t);
    let t = self.wpq_fence(t);
    let t = self.nvm.access(self.space.backup(0), AccessKind::Write, 64, t);
    let t = self.nvm.access(self.space.backup(16384), AccessKind::Write, 64, t);
    self.stamp_root(t)
}

fn stamp_root(&mut self, t: u64) -> u64 {
    let t = self.wpq_fence(t);
    self.nvm.access(self.space.security_root(), AccessKind::Write, 64, t)
}

/// Near-miss: a commit-record *read* and WAL-sealed spare work after the
/// seal are post-commit-legal.
pub fn checkpoint_commit_clean(&mut self, t: u64) -> u64 {
    let t = self.nvm.access(self.space.backup(8192), AccessKind::Write, 64, t);
    let t = self.wpq_fence(t);
    let t = self.nvm.access(self.space.backup(0), AccessKind::Write, 64, t);
    let t = self.nvm.access(self.space.backup(0), AccessKind::Read, 64, t);
    self.remap_spare(t)
}

fn remap_spare(&mut self, t: u64) -> u64 {
    let wal = self.space.backup_wal(self.wal_seq);
    let t = self.nvm.access(wal, AccessKind::Write, 64, t);
    let t = self.nvm.access(self.space.spare_block(1), AccessKind::Write, 64, t);
    let t = self.nvm.access(wal, AccessKind::Write, 64, t);
    self.stats.media.wal_seals += 1;
    t
}
