//! L8 fixture: an un-WAL-bracketed backup write reached from a recovery
//! entry point. Parsed as `crates/core/src/redopath.rs`.

pub fn recover_tables(&mut self, t: u64) -> u64 {
    self.restore_ptt(t)
}

fn restore_ptt(&mut self, t: u64) -> u64 {
    self.nvm.access(self.space.backup(16384), AccessKind::Write, 64, t)
}

/// Near-miss: the same PTT-image write, WAL-bracketed, is legal.
pub fn redo_remap(&mut self, t: u64) -> u64 {
    let wal = self.space.backup_wal(self.wal_seq); // intent binding
    let t = self.nvm.access(wal, AccessKind::Write, 64, t); // intent record
    let t = self.nvm.access(self.space.backup(16384), AccessKind::Write, 64, t); // payload
    let t = self.nvm.access(wal, AccessKind::Write, 64, t); // seal write
    self.stats.media.wal_seals += 1; // seal counter
    t
}
