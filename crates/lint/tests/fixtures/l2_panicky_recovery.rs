//! Known-bad: every class of panic risk inside recovery-scope functions,
//! one scoped by name, one by annotation. Parsed as
//! `crates/core/src/replay.rs`.

pub fn recover_metadata(slots: &[u64]) -> u64 {
    let first = slots[0];
    let parsed = decode(first).unwrap();
    let checked = verify(parsed).expect("should work");
    if checked == 0 {
        panic!("no recovery state");
    }
    checked
}

// lint: recovery-path
pub fn annotated_helper(x: Option<u64>) -> u64 {
    x.unwrap()
}

pub fn out_of_scope(x: Option<u64>) -> u64 {
    x.unwrap_or(7)
}
