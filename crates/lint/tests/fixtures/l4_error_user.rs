//! Companion to `l4_error_enum.rs`: constructs and tests `Covered`,
//! constructs `NeverTested` without ever matching it in a test. Parsed as
//! `crates/core/src/faults.rs`.

pub fn fail_covered() -> Error {
    Error::Covered
}

pub fn fail_never_tested() -> Error {
    Error::NeverTested
}

#[cfg(test)]
mod tests {
    #[test]
    fn covered_roundtrip() {
        assert!(matches!(fail_covered(), Error::Covered));
    }
}
