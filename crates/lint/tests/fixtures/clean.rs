//! Clean file: near-miss patterns every rule must tolerate. Parsed as
//! `crates/core/src/clean.rs`.

pub fn recover_from_checkpoint(log: &[u64], n: usize) -> Option<u64> {
    let head = log.get(0)?;
    let tail = log[n];
    let seq = next_seq().expect("invariant: the ring is never empty");
    Some(head + tail + seq)
}

pub fn arena_writes_are_not_store_writes(arena: &mut Arena) {
    arena.write(0, &[1, 2, 3]);
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_and_touch_stores() {
        store.write(0, &[1]);
        let v = maybe().unwrap();
        assert_eq!(v, 1);
    }
}
