//! Known-bad: a numeric config field that `validate()` never checks (the
//! boolean is exempt — no range to check). Parsed as
//! `crates/types/src/config.rs`.

pub struct ThyNvmConfig {
    pub epoch_cycles: u64,
    pub unchecked_knob: u32,
    pub verbose: bool,
}

impl ThyNvmConfig {
    pub fn validate(&self) -> Result<(), String> {
        if self.epoch_cycles == 0 {
            return Err("epoch length cannot be zero".to_owned());
        }
        Ok(())
    }
}
