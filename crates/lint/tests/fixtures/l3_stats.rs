//! Known-bad: a `MemStats` with a dead counter (only `merge` touches it)
//! and an unverified one (mutated, never asserted). Parsed as
//! `crates/types/src/stats.rs`.

pub struct MemStats {
    pub reads: u64,
    pub dead_counter: u64,
    pub untested_counter: u64,
}

impl MemStats {
    pub fn bump(&mut self) {
        self.reads += 1;
        self.untested_counter += 1;
    }

    pub fn merge(&mut self, o: &MemStats) {
        self.reads += o.reads;
        self.dead_counter += o.dead_counter;
        self.untested_counter += o.untested_counter;
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn reads_are_counted() {
        assert_eq!(MemStats::default().reads, 0);
    }
}
