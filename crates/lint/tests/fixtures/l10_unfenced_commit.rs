//! L10 fixture: commit-record and security-root persists without a
//! persist-buffer fence. Parsed as `crates/core/src/fencepath.rs`.

pub fn seal_without_fence(&mut self, t: u64) -> u64 {
    let t = self.nvm.access(self.space.backup(8192), AccessKind::Write, 64, t);
    self.nvm.access(self.space.backup(0), AccessKind::Write, 64, t)
}

pub fn root_without_fence(&mut self, t: u64) -> u64 {
    self.nvm.access(self.space.security_root(), AccessKind::Write, 64, t)
}

/// Near-miss: the fence dominates the seal — clean.
pub fn seal_with_fence(&mut self, t: u64) -> u64 {
    let t = self.nvm.access(self.space.backup(8192), AccessKind::Write, 64, t);
    let t = self.wpq_fence(t); // fence
    self.nvm.access(self.space.backup(0), AccessKind::Write, 64, t) // seal
}

/// Near-miss: backup metadata is covered by the commit protocol, not by
/// the fence obligation.
pub fn metadata_only(&mut self, t: u64) -> u64 {
    self.nvm.access(self.space.backup(16384), AccessKind::Write, 64, t)
}
