//! Known-bad: hand-rolled backoff loops multiplying a `*backoff_ns` knob
//! by the attempt counter instead of routing through `types::RetryPolicy`.
//! Parsed as `crates/core/src/spinner.rs`. The test module's by-hand
//! schedule is exempt — tests cross-check the policy that way.

pub fn retry_read(&mut self) {
    for attempt in 1..=self.cfg.media.max_read_retries {
        let wait = self.cfg.media.retry_backoff_ns * u64::from(attempt);
        self.clock.advance(wait);
    }
}

pub fn retry_refetch(&mut self) {
    let mut attempt = 0u64;
    while attempt < 3 {
        attempt += 1;
        self.clock.advance(attempt * self.cfg.dram_fault.refetch_backoff_ns);
    }
}

pub fn pass_through(&self) -> RetryPolicy {
    // A plain read of the knob is fine: this is the sanctioned route.
    RetryPolicy::new(self.cfg.media.max_read_retries, self.cfg.media.retry_backoff_ns)
}

#[cfg(test)]
mod tests {
    #[test]
    fn schedule_matches_policy() {
        let by_hand = backoff_ns * 2;
        assert_eq!(policy.backoff(2).as_ns(), by_hand);
    }
}
