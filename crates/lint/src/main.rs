//! CLI entry point: lint the workspace, apply `lint.baseline`, print
//! `file:line` diagnostics, exit nonzero on any violation.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    // Optional positional arg: workspace root. Default: walk up from the
    // current directory (cargo runs binaries with cwd = invocation dir).
    let root = match std::env::args_os().nth(1) {
        Some(p) => PathBuf::from(p),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match thynvm_lint::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("thynvm-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let baseline_path = root.join("lint.baseline");
    let entries = if baseline_path.is_file() {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("thynvm-lint: cannot read {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        };
        match thynvm_lint::baseline::parse(&text) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("thynvm-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        Vec::new()
    };

    let report = match thynvm_lint::run(&root, &entries) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("thynvm-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    for d in report.violations.iter().chain(&report.stale) {
        println!("{d}");
    }
    let n = report.violations.len() + report.stale.len();
    if report.is_failure() {
        eprintln!(
            "thynvm-lint: {n} violation(s) across {} file(s) scanned",
            report.files_scanned
        );
        ExitCode::from(1)
    } else {
        eprintln!(
            "thynvm-lint: clean ({} file(s) scanned, {} baselined suppression(s))",
            report.files_scanned,
            entries.len()
        );
        ExitCode::SUCCESS
    }
}
