//! CLI entry point: lint the workspace, apply `lint.baseline`, print
//! `file:line` diagnostics, exit nonzero on any violation.
//!
//! ```text
//! thynvm-lint [ROOT] [--json] [--github] [--effects]
//! ```
//!
//! * `--json` — one JSON object per diagnostic on stdout (machine
//!   consumers; stable key order).
//! * `--github` — additionally emit GitHub Actions problem-matcher
//!   annotations (`::error file=…,line=…`) so violations land inline on
//!   PR diffs.
//! * `--effects` — print the per-function persistence-effect dump (the
//!   committed `lint.effects` artifact) and exit 0 without linting.

use std::path::PathBuf;
use std::process::ExitCode;

use thynvm_lint::rules::Diagnostic;

/// Minimal JSON string escaping (the diagnostics are ASCII-ish, but paths
/// and messages must still round-trip).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_line(d: &Diagnostic) -> String {
    format!(
        "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"msg\":\"{}\"}}",
        d.rule,
        json_escape(&d.file),
        d.line,
        json_escape(&d.msg)
    )
}

/// GitHub Actions workflow command: shows as an inline annotation on the
/// PR diff. Message text must not contain raw newlines or `::`-significant
/// characters; the escaping rules are GitHub's, not JSON's.
fn github_line(d: &Diagnostic) -> String {
    let msg = d.msg.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A");
    format!(
        "::error file={},line={},title=thynvm-lint {}::{msg}",
        d.file, d.line, d.rule
    )
}

fn main() -> ExitCode {
    let mut root_arg: Option<PathBuf> = None;
    let mut json = false;
    let mut github = false;
    let mut effects = false;
    for arg in std::env::args_os().skip(1) {
        match arg.to_str() {
            Some("--json") => json = true,
            Some("--github") => github = true,
            Some("--effects") => effects = true,
            Some(s) if s.starts_with("--") => {
                eprintln!("thynvm-lint: unknown flag `{s}`");
                return ExitCode::from(2);
            }
            _ => root_arg = Some(PathBuf::from(arg)),
        }
    }

    // Default root: walk up from the current directory (cargo runs binaries
    // with cwd = invocation dir).
    let root = match root_arg {
        Some(p) => p,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match thynvm_lint::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("thynvm-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    if effects {
        return match thynvm_lint::effects_dump(&root) {
            Ok(dump) => {
                print!("{dump}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("thynvm-lint: effects dump failed: {e}");
                ExitCode::from(2)
            }
        };
    }

    let baseline_path = root.join("lint.baseline");
    let entries = if baseline_path.is_file() {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("thynvm-lint: cannot read {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        };
        match thynvm_lint::baseline::parse(&text) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("thynvm-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        Vec::new()
    };

    let report = match thynvm_lint::run(&root, &entries) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("thynvm-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    for d in report.violations.iter().chain(&report.stale) {
        if json {
            println!("{}", json_line(d));
        } else {
            println!("{d}");
        }
        if github {
            println!("{}", github_line(d));
        }
    }
    let n = report.violations.len() + report.stale.len();
    if report.is_failure() {
        eprintln!(
            "thynvm-lint: {n} violation(s) across {} file(s) scanned",
            report.files_scanned
        );
        ExitCode::from(1)
    } else {
        eprintln!(
            "thynvm-lint: clean ({} file(s) scanned, {} baselined suppression(s))",
            report.files_scanned,
            entries.len()
        );
        ExitCode::SUCCESS
    }
}
