//! NVM persistence-effect inference.
//!
//! Every production function gets an *effect set*: which persistence
//! regions it can write, directly or through calls. Effects are seeded from
//! two token shapes and propagated over the [`CallGraph`] to a fixpoint:
//!
//! * **Device writes** — `nvm.access(<region>, AccessKind::Write, ..)`
//!   where `<region>` is an `AddressSpace` region constructor, either
//!   inline (`self.space.backup(8192)`) or through a local binding
//!   (`let wal = self.space.backup_wal(seq); .. nvm.access(wal, ..)`).
//!   `dram.access(.., Write, ..)` is a working-region (volatile) write.
//!   Reads carry no effect; addresses the pass cannot resolve to a tracked
//!   region (checkpoint data regions, home region, raw `HwAddr::new`
//!   offsets) are deliberately untracked — ThyNVM's ordering invariants are
//!   about the *metadata* regions, data regions are covered by the commit
//!   protocol itself.
//! * **Store mutations** — `<receiver>.<mutator>(..)` on a `SparseStore`
//!   field (the L1 pattern), the content-changing side channel.
//!
//! The fixpoint is a monotone bitmask union over a deterministic node
//! order, so two runs over the same workspace emit byte-identical
//! [`render_dump`] output.

use std::collections::BTreeMap;

use crate::graph::CallGraph;
use crate::source::{match_bracket, FileIndex};

/// Effect bits. `REGION_WRITES` covers persisted NVM regions; `STORE` is
/// the byte-content mutation channel (no address, so no ordering rules —
/// only the L9 confinement audit uses it).
pub const WORKING: u16 = 1 << 0;
pub const BACKUP: u16 = 1 << 1;
pub const BACKUP_WAL: u16 = 1 << 2;
pub const COMMIT_RECORD: u16 = 1 << 3;
pub const SECURITY_COUNTERS: u16 = 1 << 4;
pub const SECURITY_TREE: u16 = 1 << 5;
pub const SECURITY_ROOT: u16 = 1 << 6;
pub const SPARE: u16 = 1 << 7;
pub const STORE: u16 = 1 << 8;

/// Label table in render order (alphabetical, so dumps are diff-stable).
const LABELS: &[(u16, &str)] = &[
    (BACKUP, "backup"),
    (BACKUP_WAL, "backup_wal"),
    (COMMIT_RECORD, "commit_record"),
    (SECURITY_COUNTERS, "security_counters"),
    (SECURITY_ROOT, "security_root"),
    (SECURITY_TREE, "security_tree"),
    (SPARE, "spare"),
    (STORE, "store"),
    (WORKING, "working"),
];

/// Renders an effect mask as its sorted comma-separated labels.
pub fn labels(mask: u16) -> String {
    let mut out = Vec::new();
    for (bit, name) in LABELS {
        if mask & bit != 0 {
            out.push(*name);
        }
    }
    out.join(",")
}

/// The label of a single region bit (for diagnostics).
pub fn region_name(bit: u16) -> &'static str {
    LABELS.iter().find(|(b, _)| *b == bit).map_or("?", |(_, n)| n)
}

/// `AddressSpace` region constructors → effect bit. `backup(0)` is the
/// commit record — the 64 B at offset zero of the backup region whose
/// checksummed write is the checkpoint's atomic seal; any other `backup(..)`
/// offset is metadata (BTT/PTT images). `health_record()` lives in the
/// backup region too.
fn constructor_region(name: &str) -> Option<u16> {
    Some(match name {
        "working_page" | "working_block" => WORKING,
        "backup" => BACKUP, // refined to COMMIT_RECORD by literal-0 peek
        "backup_wal" => BACKUP_WAL,
        "security_counters" => SECURITY_COUNTERS,
        "security_tree" => SECURITY_TREE,
        "security_root" => SECURITY_ROOT,
        "health_record" => BACKUP,
        "spare_block" => SPARE,
        _ => return None,
    })
}

/// One tracked region write inside a function body.
#[derive(Debug, Clone)]
pub struct WriteSite {
    /// Effect bit of the written region.
    pub region: u16,
    /// Token index of the `access` ident.
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
}

/// Per-function facts, parallel to `CallGraph::nodes`.
#[derive(Debug, Clone, Default)]
pub struct FnFacts {
    /// Effects seeded in this body alone.
    pub direct: u16,
    /// Direct ∪ effects of everything reachable through calls (fixpoint).
    pub transitive: u16,
    /// Tracked region writes, in body token order.
    pub writes: Vec<WriteSite>,
    /// `SparseStore` mutator call sites (`(token, line)`).
    pub stores: Vec<(usize, u32)>,
    /// Token indices of WAL intent records (`backup_wal(..)` constructor calls).
    pub wal_begins: Vec<usize>,
    /// Token indices of WAL seals (`wal_seals +=` counter bumps).
    pub wal_seals: Vec<usize>,
    /// Token indices of persist-buffer fences (`.wpq_fence(..)` /
    /// `.fence(..)` calls) — the §4.4 drain points L10 requires before
    /// commit-record and security-root persists.
    pub fences: Vec<usize>,
    /// Whether the signature takes `&mut self`.
    pub mut_self: bool,
}

/// Runs seeding and the fixpoint; returns facts parallel to `graph.nodes`.
pub fn analyze(files: &[FileIndex], graph: &CallGraph) -> Vec<FnFacts> {
    let mut facts: Vec<FnFacts> = graph
        .nodes
        .iter()
        .map(|n| seed_fn(&files[n.file], n.item))
        .collect();

    // Monotone fixpoint: union callee effects until stable. The workspace
    // graph is shallow; this converges in a handful of sweeps.
    for f in &mut facts {
        f.transitive = f.direct;
    }
    loop {
        let mut changed = false;
        for n in 0..graph.nodes.len() {
            let mut acc = facts[n].transitive;
            for call in &graph.nodes[n].calls {
                for &e in &call.edges {
                    acc |= facts[e].transitive;
                }
            }
            if acc != facts[n].transitive {
                facts[n].transitive = acc;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    facts
}

/// Seeds one function body: region writes, store mutations, WAL markers,
/// and the receiver mode.
fn seed_fn(f: &FileIndex, item: usize) -> FnFacts {
    let func = &f.fns[item];
    let toks = &f.tokens;
    let mut facts = FnFacts { mut_self: takes_mut_self(f, item), ..FnFacts::default() };
    let Some(start) = func.body_start else { return facts };
    let end = func.body_end.min(toks.len());

    // Pass 1: `let <name> = .. <region-constructor>(..) .. ;` bindings.
    let mut bindings: BTreeMap<&str, u16> = BTreeMap::new();
    let mut i = start + 1;
    while i + 2 < end {
        if toks[i].kind.is_ident("let") {
            let mut j = i + 1;
            if toks[j].kind.is_ident("mut") {
                j += 1;
            }
            if let Some(name) = toks[j].kind.ident() {
                if toks.get(j + 1).is_some_and(|t| t.is_punct("=")) {
                    // RHS runs to the statement's `;` at bracket depth 0.
                    let mut k = j + 2;
                    let mut depth = 0i32;
                    let mut region = None;
                    while k < end {
                        match &toks[k].kind {
                            crate::lexer::Tok::Punct("(" | "[" | "{") => depth += 1,
                            crate::lexer::Tok::Punct(")" | "]" | "}") => depth -= 1,
                            crate::lexer::Tok::Punct(";") if depth <= 0 => break,
                            _ => {
                                if region.is_none() {
                                    region = constructor_at(toks, k, end);
                                }
                            }
                        }
                        k += 1;
                    }
                    if let Some(r) = region {
                        bindings.insert(name, r);
                    }
                    i = k;
                    continue;
                }
            }
        }
        i += 1;
    }

    // Pass 2: write sites, store mutations, WAL markers.
    for i in start + 1..end.saturating_sub(1) {
        let Some(name) = toks[i].kind.ident() else { continue };

        // WAL intent: a `backup_wal(..)` constructor call anywhere (inline
        // in an access, or establishing the `wal` binding).
        if name == "backup_wal"
            && i >= 1
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
        {
            facts.wal_begins.push(i);
        }
        // WAL seal: the conservation counter bump that the WAL discipline
        // requires after the sealing device write.
        if name == "wal_seals" && toks.get(i + 1).is_some_and(|t| t.is_punct("+=")) {
            facts.wal_seals.push(i);
        }
        // Persist-buffer fence: the controller's `.wpq_fence(..)` wrapper or
        // a direct `.fence(..)` on the buffer — either drains the WPQ.
        if (name == "wpq_fence" || name == "fence")
            && i >= 1
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
        {
            facts.fences.push(i);
        }

        // Store mutation: `<receiver>.<mutator>(..)` (the L1 shape).
        if i >= 2
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
            && crate::rules::STORE_MUTATORS.contains(&name)
            && toks[i - 2]
                .kind
                .ident()
                .is_some_and(|r| crate::rules::STORE_RECEIVERS.contains(&r))
        {
            facts.direct |= STORE;
            facts.stores.push((i, toks[i].line));
        }

        // Device access: `nvm.access(..)` / `dram.access(..)`.
        if name == "access"
            && crate::graph::is_device_receiver(f, i)
            && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
        {
            let open = i + 1;
            let close = match_bracket(toks, open);
            let is_write =
                toks[open..=close.min(toks.len() - 1)].iter().any(|t| t.kind.is_ident("Write"));
            if !is_write {
                continue;
            }
            let receiver = toks[i - 2].kind.ident().unwrap_or_default();
            let region = if receiver == "dram" {
                Some(WORKING)
            } else {
                first_arg_region(toks, open, close, &bindings)
            };
            if let Some(r) = region {
                facts.direct |= r;
                facts.writes.push(WriteSite { region: r, tok: i, line: toks[i].line });
            }
        }
    }
    facts
}

/// Resolves an `access` call's first argument to a region: an inline
/// constructor call, or a single identifier looked up in the local
/// `let`-bindings.
fn first_arg_region(
    toks: &[crate::lexer::Token],
    open: usize,
    close: usize,
    bindings: &BTreeMap<&str, u16>,
) -> Option<u16> {
    // First argument spans `open+1 ..` up to the first top-level comma.
    let mut depth = 0i32;
    let mut arg_end = close;
    for (k, t) in toks.iter().enumerate().take(close).skip(open + 1) {
        match &t.kind {
            crate::lexer::Tok::Punct("(" | "[" | "{") => depth += 1,
            crate::lexer::Tok::Punct(")" | "]" | "}") => depth -= 1,
            crate::lexer::Tok::Punct(",") if depth <= 0 => {
                arg_end = k;
                break;
            }
            _ => {}
        }
    }
    // Inline constructor inside the argument?
    for k in open + 1..arg_end {
        if let Some(r) = constructor_at(toks, k, arg_end) {
            return Some(r);
        }
    }
    // A lone identifier: a local binding established from a constructor.
    if arg_end == open + 2 {
        if let Some(name) = toks[open + 1].kind.ident() {
            return bindings.get(name).copied();
        }
    }
    None
}

/// A region-constructor method call at token `k` (`.name(..)`), with the
/// `backup(0)` → commit-record refinement.
fn constructor_at(toks: &[crate::lexer::Token], k: usize, limit: usize) -> Option<u16> {
    let name = toks[k].kind.ident()?;
    let base = constructor_region(name)?;
    if !(k >= 1 && toks[k - 1].is_punct(".")) {
        return None;
    }
    if !toks.get(k + 1).is_some_and(|t| t.is_punct("(")) {
        return None;
    }
    if base == BACKUP && name == "backup" {
        // `backup(0)` is the commit record; any other offset is metadata.
        let is_zero = toks.get(k + 2).is_some_and(|t| matches!(&t.kind, crate::lexer::Tok::Num(n) if n == "0"))
            && toks.get(k + 3).map(|t| t.is_punct(")")).unwrap_or(false)
            && k + 3 <= limit;
        return Some(if is_zero { COMMIT_RECORD } else { BACKUP });
    }
    Some(base)
}

/// Whether the signature of `files[..].fns[item]` takes `&mut self`
/// (including `&'a mut self`).
fn takes_mut_self(f: &FileIndex, item: usize) -> bool {
    let func = &f.fns[item];
    let toks = &f.tokens;
    let end = func.body_start.unwrap_or(func.body_end).min(toks.len());
    // Find the parameter list: first `(` after the name.
    let Some(open) = toks[..end]
        .iter()
        .enumerate()
        .skip(func.sig_start + 1)
        .find_map(|(k, t)| t.is_punct("(").then_some(k))
    else {
        return false;
    };
    let close = match_bracket(toks, open).min(end);
    for k in open + 1..close {
        if !toks[k].kind.is_ident("self") {
            continue;
        }
        // Walk back over `mut` and an optional lifetime to the `&`.
        let mut j = k;
        if j >= 1 && toks[j - 1].kind.is_ident("mut") {
            j -= 1;
            if j >= 1 && matches!(toks[j - 1].kind, crate::lexer::Tok::Lifetime(_)) {
                j -= 1;
            }
            if j >= 1 && toks[j - 1].is_punct("&") {
                return true;
            }
        }
        return false; // `self`, `&self`, `self: ..`
    }
    false
}

/// Renders the committed `--effects` artifact: one line per production
/// function with a non-empty transitive effect set, sorted by file then
/// function name (same-named functions in one file are disambiguated by
/// source order). Line numbers are deliberately omitted so unrelated edits
/// do not churn the artifact.
pub fn render_dump(files: &[FileIndex], graph: &CallGraph, facts: &[FnFacts]) -> String {
    let mut lines: Vec<String> = Vec::new();
    let mut seen: BTreeMap<(String, String), u32> = BTreeMap::new();
    let mut entries: Vec<(String, String, u32, u16)> = Vec::new();
    for (n, node) in graph.nodes.iter().enumerate() {
        if facts[n].transitive == 0 {
            continue;
        }
        let file = files[node.file].rel_path.clone();
        let name = files[node.file].fns[node.item].name.clone();
        let occ = seen.entry((file.clone(), name.clone())).or_insert(0);
        *occ += 1;
        entries.push((file, name, *occ, facts[n].transitive));
    }
    entries.sort();
    lines.push("# thynvm-lint --effects: transitive persistence-effect sets".to_owned());
    lines.push("# (regenerate: cargo run -p thynvm-lint --release -- --effects > lint.effects)".to_owned());
    for (file, name, occ, mask) in entries {
        let suffix = if occ > 1 { format!("#{occ}") } else { String::new() };
        lines.push(format!("{file}::{name}{suffix}: {}", labels(mask)));
    }
    lines.push(String::new());
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzed(src: &str) -> (Vec<FileIndex>, CallGraph, Vec<FnFacts>) {
        let files = vec![FileIndex::parse("crates/core/src/x.rs", src)];
        let graph = CallGraph::build(&files);
        let facts = analyze(&files, &graph);
        (files, graph, facts)
    }

    fn facts_of<'a>(
        files: &[FileIndex],
        graph: &CallGraph,
        facts: &'a [FnFacts],
        name: &str,
    ) -> &'a FnFacts {
        let n = graph
            .nodes
            .iter()
            .position(|n| files[n.file].fns[n.item].name == name)
            .unwrap_or_else(|| panic!("{name} analyzed"));
        &facts[n]
    }

    #[test]
    fn seeds_inline_constructors_and_discriminates_commit_record() {
        let src = concat!(
            "fn seal(&mut self, t: u64) -> u64 {\n",
            "    let t = self.nvm.access(self.space.backup(8192), AccessKind::Write, 64, t);\n",
            "    self.nvm.access(self.space.backup(0), AccessKind::Write, 64, t)\n",
            "}\n",
        );
        let (files, graph, facts) = analyzed(src);
        let f = facts_of(&files, &graph, &facts, "seal");
        assert_eq!(f.direct, BACKUP | COMMIT_RECORD, "{}", labels(f.direct));
        assert_eq!(f.writes.len(), 2);
        assert_eq!(f.writes[0].region, BACKUP);
        assert_eq!(f.writes[1].region, COMMIT_RECORD);
    }

    #[test]
    fn reads_and_untracked_addresses_carry_no_effect() {
        let src = concat!(
            "fn peek(&mut self, t: u64) -> u64 {\n",
            "    let t = self.nvm.access(self.space.backup(0), AccessKind::Read, 64, t);\n",
            "    self.nvm.access(HwAddr::new(0x40), AccessKind::Write, 64, t)\n",
            "}\n",
        );
        let (files, graph, facts) = analyzed(src);
        let f = facts_of(&files, &graph, &facts, "peek");
        assert_eq!(f.direct, 0, "{}", labels(f.direct));
    }

    #[test]
    fn binding_tracked_wal_write_and_markers() {
        let src = concat!(
            "fn remap(&mut self, t: u64) -> u64 {\n",
            "    let wal = self.space.backup_wal(self.wal_seq);\n",
            "    let t = self.nvm.access(wal, AccessKind::Write, 64, t);\n",
            "    let t = self.nvm.access(self.space.spare_block(3), AccessKind::Write, 64, t);\n",
            "    let t = self.nvm.access(wal, AccessKind::Write, 64, t);\n",
            "    self.stats.media.wal_seals += 1;\n",
            "    t\n",
            "}\n",
        );
        let (files, graph, facts) = analyzed(src);
        let f = facts_of(&files, &graph, &facts, "remap");
        assert_eq!(f.direct, BACKUP_WAL | SPARE, "{}", labels(f.direct));
        assert_eq!(f.wal_begins.len(), 1);
        assert_eq!(f.wal_seals.len(), 1);
        let spare = f.writes.iter().find(|w| w.region == SPARE).expect("spare write");
        assert!(f.wal_begins[0] < spare.tok && spare.tok < f.wal_seals[0]);
    }

    #[test]
    fn fence_calls_are_seeded_in_token_order() {
        let src = concat!(
            "fn round(&mut self, t: u64) -> u64 {\n",
            "    let t = self.wpq_fence(t);\n",
            "    let t = self.nvm.access(self.space.backup(0), AccessKind::Write, 64, t);\n",
            "    let t = p.fence(t);\n",
            "    fence(t); // free fn: not a drain call, not seeded\n",
            "    t\n",
            "}\n",
        );
        let (files, graph, facts) = analyzed(src);
        let f = facts_of(&files, &graph, &facts, "round");
        assert_eq!(f.fences.len(), 2, "method-call fences only");
        let commit = f.writes.iter().find(|w| w.region == COMMIT_RECORD).expect("commit write");
        assert!(f.fences[0] < commit.tok && commit.tok < f.fences[1]);
    }

    #[test]
    fn dram_access_is_working_and_store_mutators_seed_store() {
        let src = concat!(
            "fn spill(&mut self, t: u64) -> u64 {\n",
            "    self.committed.write(addr, bytes);\n",
            "    self.dram.access(HwAddr::new(off), AccessKind::Write, 64, t)\n",
            "}\n",
        );
        let (files, graph, facts) = analyzed(src);
        let f = facts_of(&files, &graph, &facts, "spill");
        assert_eq!(f.direct, STORE | WORKING, "{}", labels(f.direct));
        assert!(f.mut_self);
    }

    #[test]
    fn fixpoint_propagates_effects_through_calls() {
        let src = concat!(
            "fn top(&mut self, t: u64) { self.mid(t); }\n",
            "fn mid(&mut self, t: u64) { self.leaf(t); }\n",
            "fn leaf(&mut self, t: u64) {\n",
            "    self.nvm.access(self.space.security_root(), AccessKind::Write, 64, t);\n",
            "}\n",
        );
        let (files, graph, facts) = analyzed(src);
        assert_eq!(facts_of(&files, &graph, &facts, "top").direct, 0);
        assert_eq!(facts_of(&files, &graph, &facts, "top").transitive, SECURITY_ROOT);
        assert_eq!(facts_of(&files, &graph, &facts, "mid").transitive, SECURITY_ROOT);
    }

    #[test]
    fn recursion_converges() {
        let src = concat!(
            "fn ping(&mut self, t: u64) { self.pong(t); self.committed.clear(); }\n",
            "fn pong(&mut self, t: u64) { self.ping(t); }\n",
        );
        let (files, graph, facts) = analyzed(src);
        assert_eq!(facts_of(&files, &graph, &facts, "ping").transitive, STORE);
        assert_eq!(facts_of(&files, &graph, &facts, "pong").transitive, STORE);
    }

    #[test]
    fn mut_self_detection_handles_the_forms() {
        let src = concat!(
            "fn a(&mut self) {}\n",
            "fn b(&self) {}\n",
            "fn c(self) {}\n",
            "fn d(&'a mut self) {}\n",
            "fn e(x: &mut u64) {}\n",
        );
        let (files, graph, facts) = analyzed(src);
        assert!(facts_of(&files, &graph, &facts, "a").mut_self);
        assert!(!facts_of(&files, &graph, &facts, "b").mut_self);
        assert!(!facts_of(&files, &graph, &facts, "c").mut_self);
        assert!(facts_of(&files, &graph, &facts, "d").mut_self);
        assert!(!facts_of(&files, &graph, &facts, "e").mut_self);
    }

    #[test]
    fn dump_is_deterministic_and_sorted() {
        let src = concat!(
            "fn zz(&mut self, t: u64) { self.nvm.access(self.space.backup(0), AccessKind::Write, 64, t); }\n",
            "fn aa(&mut self, t: u64) { self.nvm.access(self.space.backup(8192), AccessKind::Write, 64, t); }\n",
            "fn quiet(&self) {}\n",
        );
        let (files, graph, facts) = analyzed(src);
        let d1 = render_dump(&files, &graph, &facts);
        let facts2 = analyze(&files, &graph);
        let d2 = render_dump(&files, &graph, &facts2);
        assert_eq!(d1, d2, "byte-identical across runs");
        let aa = d1.lines().position(|l| l.contains("::aa")).expect("aa listed");
        let zz = d1.lines().position(|l| l.contains("::zz")).expect("zz listed");
        assert!(aa < zz, "sorted by name");
        assert!(!d1.contains("::quiet"), "effect-free fns are omitted");
    }
}
