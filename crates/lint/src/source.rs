//! Structural index over one lexed file.
//!
//! Built on top of [`crate::lexer`], this pass recovers just enough item
//! structure for the rules: function items (name, body token range, whether
//! they sit inside test code), `#[cfg(test)]` spans, struct fields, and enum
//! variants. It tracks brace depth instead of parsing, which is robust
//! against everything the workspace actually contains.

use crate::lexer::{self, Comment, Token};

/// One `fn` item found in a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword; `tokens[sig_start..body_start]` is
    /// the signature (name, generics, parameters, return type).
    pub sig_start: usize,
    /// Token index of the body's opening `{` (tokens[body_start] == `{`).
    /// `None` for bodiless trait-method declarations.
    pub body_start: Option<usize>,
    /// Token index one past the body's closing `}`.
    pub body_end: usize,
    /// Whether the item is inside `#[cfg(test)]` or under `#[test]`.
    pub in_test: bool,
}

/// One named field of a struct.
#[derive(Debug, Clone)]
pub struct FieldItem {
    /// Struct the field belongs to.
    pub owner: String,
    /// Field name.
    pub name: String,
    /// 1-based declaration line.
    pub line: u32,
    /// Raw type tokens joined with no spaces (`u64`, `Vec<CrashEvent>`).
    pub ty: String,
}

/// One variant of an enum.
#[derive(Debug, Clone)]
pub struct VariantItem {
    /// Enum the variant belongs to.
    pub owner: String,
    /// Variant name.
    pub name: String,
    /// 1-based declaration line.
    pub line: u32,
}

/// Fully indexed source file, input to every rule.
pub struct FileIndex {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Comments (side channel), sorted by line.
    pub comments: Vec<Comment>,
    /// Function items in source order.
    pub fns: Vec<FnItem>,
    /// Struct fields in source order.
    pub fields: Vec<FieldItem>,
    /// Enum variants in source order.
    pub variants: Vec<VariantItem>,
    /// For each token index, whether it lies inside test code
    /// (`#[cfg(test)]` module or `#[test]` function).
    test_mask: Vec<bool>,
}

impl FileIndex {
    /// Lexes and indexes `src` as the file `rel_path`.
    pub fn parse(rel_path: &str, src: &str) -> FileIndex {
        let (tokens, comments) = lexer::lex(src);
        let mut idx = FileIndex {
            rel_path: rel_path.replace('\\', "/"),
            tokens,
            comments,
            fns: Vec::new(),
            fields: Vec::new(),
            variants: Vec::new(),
            test_mask: Vec::new(),
        };
        idx.test_mask = vec![false; idx.tokens.len()];
        idx.index_items();
        idx
    }

    /// Whether the token at `i` is inside test code.
    pub fn is_test(&self, i: usize) -> bool {
        self.test_mask.get(i).copied().unwrap_or(false)
    }

    /// The function whose body contains token `i`, if any (innermost wins —
    /// closures are not items, so nesting only happens for fns in fns, which
    /// the workspace does not use; last match is the innermost).
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .rfind(|f| f.body_start.is_some_and(|s| s <= i) && i < f.body_end)
    }

    /// Whether any comment within `span` lines above `line` contains `needle`.
    pub fn comment_above(&self, line: u32, span: u32, needle: &str) -> bool {
        let lo = line.saturating_sub(span);
        self.comments
            .iter()
            .any(|c| c.line >= lo && c.line < line && c.text.contains(needle))
    }

    /// Walks the token stream once, recording fns, struct fields, enum
    /// variants and the test mask.
    fn index_items(&mut self) {
        let toks = &self.tokens;
        let n = toks.len();
        // Depth-indexed stack of "test scope opened at this depth".
        let mut test_depth: Option<u32> = None;
        let mut depth: u32 = 0;
        // Pending attribute state: a `#[cfg(test)]` or `#[test]` attribute
        // seen since the last item keyword applies to the next `{`-scope.
        let mut pending_test_attr = false;
        let mut i = 0;
        let mut open_fns: Vec<usize> = Vec::new(); // indices into self.fns
        // Deferred (owner, open, close, is_struct) member scans — run after
        // the walk so the token borrow is released.
        let mut member_spans: Vec<(String, usize, usize, bool)> = Vec::new();

        while i < n {
            let t = &toks[i];
            match &t.kind {
                crate::lexer::Tok::Punct("#") => {
                    // Attribute: `#[ ... ]` (or `#![ ... ]`). Scan it whole.
                    let mut j = i + 1;
                    if j < n && toks[j].is_punct("!") {
                        j += 1;
                    }
                    if j < n && toks[j].is_punct("[") {
                        let close = match_bracket(toks, j);
                        let attr: Vec<&str> = toks[j + 1..close]
                            .iter()
                            .filter_map(|t| t.kind.ident())
                            .collect();
                        if attr == ["test"]
                            || (attr.first() == Some(&"cfg") && attr.contains(&"test"))
                        {
                            pending_test_attr = true;
                        }
                        // Tokens inside the attribute inherit the current mask.
                        let in_test = test_depth.is_some();
                        for k in i..=close.min(n - 1) {
                            self.test_mask[k] = in_test;
                        }
                        i = close + 1;
                        continue;
                    }
                }
                crate::lexer::Tok::Ident(id) if id == "fn" => {
                    if let Some(name_tok) = toks.get(i + 1) {
                        if let Some(name) = name_tok.kind.ident() {
                            let (body_start, body_end) = fn_body_range(toks, i + 2);
                            self.fns.push(FnItem {
                                name: name.to_owned(),
                                line: t.line,
                                sig_start: i,
                                body_start,
                                body_end,
                                in_test: test_depth.is_some() || pending_test_attr,
                            });
                            if pending_test_attr && test_depth.is_none() {
                                // A `#[test]` fn: mark its body via the mask
                                // below by treating it as a test scope.
                                if let Some(s) = body_start {
                                    let idx = self.fns.len() - 1;
                                    open_fns.push(idx);
                                    for k in s..body_end.min(n) {
                                        self.test_mask[k] = true;
                                    }
                                    open_fns.pop();
                                }
                            }
                        }
                    }
                    pending_test_attr = false;
                }
                crate::lexer::Tok::Ident(id) if id == "struct" || id == "enum" => {
                    let is_struct = id == "struct";
                    if let Some(owner) = toks.get(i + 1).and_then(|t| t.kind.ident()) {
                        let owner = owner.to_owned();
                        // Find the body `{`, skipping generics; tuple/unit
                        // structs (`(` or `;`) carry no named members.
                        let mut j = i + 2;
                        let mut angle = 0i32;
                        while j < n {
                            match &toks[j].kind {
                                crate::lexer::Tok::Punct("<") => angle += 1,
                                crate::lexer::Tok::Punct(">") => angle -= 1,
                                crate::lexer::Tok::Punct("<<") => angle += 2,
                                crate::lexer::Tok::Punct(">>") => angle -= 2,
                                crate::lexer::Tok::Punct("{") if angle <= 0 => break,
                                crate::lexer::Tok::Punct("(") | crate::lexer::Tok::Punct(";")
                                    if angle <= 0 =>
                                {
                                    j = n;
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                        if j < n {
                            let close = match_bracket(toks, j);
                            member_spans.push((owner, j, close, is_struct));
                        }
                    }
                    pending_test_attr = false;
                }
                crate::lexer::Tok::Ident(id) if id == "mod" || id == "impl" || id == "trait" => {
                    // `pending_test_attr` on a mod opens a test scope at the
                    // mod's `{` — handled below via the depth bookkeeping.
                }
                crate::lexer::Tok::Punct("{") => {
                    depth += 1;
                    if pending_test_attr && test_depth.is_none() {
                        test_depth = Some(depth);
                        pending_test_attr = false;
                    }
                }
                crate::lexer::Tok::Punct("}") => {
                    if test_depth == Some(depth) {
                        test_depth = None;
                    }
                    depth = depth.saturating_sub(1);
                }
                _ => {}
            }
            if test_depth.is_some() {
                self.test_mask[i] = true;
            }
            i += 1;
        }
        for (owner, open, close, is_struct) in member_spans {
            if is_struct {
                self.index_struct_fields(&owner, open, close);
            } else {
                self.index_enum_variants(&owner, open, close);
            }
        }
        // Second pass: fn items flagged in_test mask their whole bodies
        // (covers `#[test]` fns and fns lexically inside `#[cfg(test)]`).
        let spans: Vec<(usize, usize)> = self
            .fns
            .iter()
            .filter(|f| f.in_test)
            .filter_map(|f| f.body_start.map(|s| (s, f.body_end)))
            .collect();
        for (s, e) in spans {
            for k in s..e.min(self.test_mask.len()) {
                self.test_mask[k] = true;
            }
        }
    }

    /// Records named fields of a struct whose body spans tokens
    /// `(open..=close)` (both braces).
    fn index_struct_fields(&mut self, owner: &str, open: usize, close: usize) {
        let toks = &self.tokens;
        let mut i = open + 1;
        while i < close {
            // Skip attributes and visibility.
            if toks[i].is_punct("#") {
                if let Some(j) = toks.get(i + 1).filter(|t| t.is_punct("[")) {
                    let _ = j;
                    i = match_bracket(toks, i + 1) + 1;
                    continue;
                }
            }
            if toks[i].kind.is_ident("pub") {
                i += 1;
                if i < close && toks[i].is_punct("(") {
                    i = match_bracket(toks, i) + 1;
                }
                continue;
            }
            // Field: `name : ty ,`
            if let Some(name) = toks[i].kind.ident() {
                if toks.get(i + 1).is_some_and(|t| t.is_punct(":")) {
                    let line = toks[i].line;
                    let name = name.to_owned();
                    // Type runs until a top-level comma or the close brace.
                    let mut j = i + 2;
                    let mut nest = 0i32;
                    let mut ty = String::new();
                    while j < close {
                        match &toks[j].kind {
                            crate::lexer::Tok::Punct(p @ ("<" | "(" | "[")) => {
                                nest += 1;
                                ty.push_str(p);
                            }
                            crate::lexer::Tok::Punct(p @ (">" | ")" | "]")) => {
                                nest -= 1;
                                ty.push_str(p);
                            }
                            crate::lexer::Tok::Punct(",") if nest <= 0 => break,
                            crate::lexer::Tok::Ident(s) => ty.push_str(s),
                            crate::lexer::Tok::Punct(p) => ty.push_str(p),
                            _ => {}
                        }
                        j += 1;
                    }
                    self.fields.push(FieldItem {
                        owner: owner.to_owned(),
                        name,
                        line,
                        ty,
                    });
                    i = j + 1;
                    continue;
                }
            }
            i += 1;
        }
    }

    /// Records variants of an enum whose body spans tokens `(open..=close)`.
    fn index_enum_variants(&mut self, owner: &str, open: usize, close: usize) {
        let toks = &self.tokens;
        let mut i = open + 1;
        while i < close {
            if toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("[")) {
                i = match_bracket(toks, i + 1) + 1;
                continue;
            }
            if let Some(name) = toks[i].kind.ident() {
                let line = toks[i].line;
                self.variants.push(VariantItem {
                    owner: owner.to_owned(),
                    name: name.to_owned(),
                    line,
                });
                // Skip payload (struct-like `{…}`, tuple `(…)`, or `= disc`)
                // up to the next top-level comma.
                let mut j = i + 1;
                let mut nest = 0i32;
                while j < close {
                    match &toks[j].kind {
                        crate::lexer::Tok::Punct("{" | "(" | "[") => nest += 1,
                        crate::lexer::Tok::Punct("}" | ")" | "]") => nest -= 1,
                        crate::lexer::Tok::Punct(",") if nest <= 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
            i += 1;
        }
    }
}

/// Token index of the `}`/`]`/`)` matching the opener at `open`.
///
/// Returns the last token index if unbalanced (EOF-tolerant).
pub(crate) fn match_bracket(toks: &[Token], open: usize) -> usize {
    let (o, c) = match &toks[open].kind {
        crate::lexer::Tok::Punct("{") => ("{", "}"),
        crate::lexer::Tok::Punct("[") => ("[", "]"),
        crate::lexer::Tok::Punct("(") => ("(", ")"),
        _ => return open,
    };
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Finds a fn body's `{..}` token range starting the scan at `from`
/// (just past the fn name). Skips generics, parameters, return type and
/// where clauses; stops at `;` (trait method without a body).
fn fn_body_range(toks: &[Token], from: usize) -> (Option<usize>, usize) {
    let mut j = from;
    let mut angle = 0i32;
    while j < toks.len() {
        match &toks[j].kind {
            crate::lexer::Tok::Punct("<") => angle += 1,
            crate::lexer::Tok::Punct(">") => angle -= 1,
            // The lexer fuses shift operators; in generics position they
            // are nested closers.
            crate::lexer::Tok::Punct("<<") => angle += 2,
            crate::lexer::Tok::Punct(">>") => angle -= 2,
            crate::lexer::Tok::Punct("->") => {}
            crate::lexer::Tok::Punct("(") | crate::lexer::Tok::Punct("[") => {
                j = match_bracket(toks, j);
            }
            crate::lexer::Tok::Punct("{") if angle <= 0 => {
                let close = match_bracket(toks, j);
                return (Some(j), close + 1);
            }
            crate::lexer::Tok::Punct(";") if angle <= 0 => return (None, j + 1),
            _ => {}
        }
        j += 1;
    }
    (None, toks.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
pub struct MemStats {
    pub reads: u64,
    pub crash_events: Vec<CrashEvent>,
}

pub enum Error {
    NoCheckpoint,
    TableFull { table: &'static str },
    AddressOutOfRange { addr: u64, limit: u64 },
}

impl Thing {
    pub fn recover_step(&mut self) -> u64 {
        self.reads += 1;
        self.reads
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn checks_reads() {
        let t = Thing::new();
        assert_eq!(t.reads, 0);
    }
}
"#;

    #[test]
    fn finds_fns_fields_variants() {
        let idx = FileIndex::parse("crates/x/src/lib.rs", SRC);
        let names: Vec<&str> = idx.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["recover_step", "checks_reads"]);
        assert!(!idx.fns[0].in_test);
        assert!(idx.fns[1].in_test);

        let fields: Vec<(&str, &str)> = idx
            .fields
            .iter()
            .map(|f| (f.owner.as_str(), f.name.as_str()))
            .collect();
        assert_eq!(fields, vec![("MemStats", "reads"), ("MemStats", "crash_events")]);
        assert_eq!(idx.fields[1].ty, "Vec<CrashEvent>");

        let variants: Vec<&str> = idx.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(variants, vec!["NoCheckpoint", "TableFull", "AddressOutOfRange"]);
        // Payload field names must not leak into the variant list.
        assert!(!variants.contains(&"table"));
        assert!(!variants.contains(&"addr"));
    }

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let idx = FileIndex::parse("crates/x/src/lib.rs", SRC);
        // Every token of `checks_reads` is masked; `recover_step` is not.
        let prod = idx.fns.iter().find(|f| f.name == "recover_step").expect("indexed");
        let test = idx.fns.iter().find(|f| f.name == "checks_reads").expect("indexed");
        let ps = prod.body_start.expect("has body");
        let ts = test.body_start.expect("has body");
        assert!(!idx.is_test(ps + 1));
        assert!(idx.is_test(ts + 1));
    }

    #[test]
    fn enclosing_fn_resolves() {
        let idx = FileIndex::parse("crates/x/src/lib.rs", SRC);
        let prod = idx.fns.iter().find(|f| f.name == "recover_step").expect("indexed");
        let inside = prod.body_start.expect("has body") + 2;
        assert_eq!(idx.enclosing_fn(inside).map(|f| f.name.as_str()), Some("recover_step"));
    }

    #[test]
    fn comment_annotations_are_visible() {
        let src = "// lint: recovery-path\nfn replay() {}\n";
        let idx = FileIndex::parse("a.rs", src);
        assert!(idx.comment_above(2, 5, "lint: recovery-path"));
        assert!(!idx.comment_above(1, 5, "lint: recovery-path"));
    }

    #[test]
    fn test_attr_fn_outside_mod_is_masked() {
        let src = "#[test]\nfn standalone() { x.unwrap(); }\nfn prod() { y(); }\n";
        let idx = FileIndex::parse("a.rs", src);
        let st = idx.fns.iter().find(|f| f.name == "standalone").expect("indexed");
        let pr = idx.fns.iter().find(|f| f.name == "prod").expect("indexed");
        assert!(st.in_test);
        assert!(!pr.in_test);
        assert!(idx.is_test(st.body_start.expect("body") + 1));
        assert!(!idx.is_test(pr.body_start.expect("body") + 1));
    }

    #[test]
    fn tuple_structs_have_no_named_fields() {
        let idx = FileIndex::parse("a.rs", "struct Wrapper(u64);\nstruct Unit;\n");
        assert!(idx.fields.is_empty());
    }

    #[test]
    fn generic_fn_body_found_despite_angle_brackets() {
        let src = "fn take<T: Into<Vec<u8>>>(x: T) -> Vec<u8> where T: Clone { x.into() }";
        let idx = FileIndex::parse("a.rs", src);
        assert_eq!(idx.fns.len(), 1);
        assert!(idx.fns[0].body_start.is_some());
    }
}
