//! The workspace invariants, as token-pattern rules.
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | L1   | Raw `SparseStore` mutations only inside `crates/mem` + sealed allowlist |
//! | L2   | Recovery paths are panic-free (no `unwrap`, bare `expect`, `panic!`, literal indexing) |
//! | L3   | Every `MemStats`/`MediaStats`/`DramStats`/`PerfStats`/`SecurityStats`/`HealthStats`/`RetryStats`/`WpqStats` counter is mutated in production code and read by a test |
//! | L4   | Every `types::Error` variant is constructed in production code and matched in a test |
//! | L5   | Every numeric `ThyNvmConfig`/`MediaFaultConfig`/`DramFaultConfig`/`SecurityConfig`/`HealthConfig`/`PersistBufferConfig`/`SystemConfig` field is checked in `validate()` |
//! | L6   | Bounded-retry loops route through `types::RetryPolicy` — no manual `*backoff_ns` arithmetic outside `crates/types/src/retry.rs` |
//! | L7   | Commit-record persist is the *last* backup/security effect of a checkpoint-commit body — nothing with those effects follows the seal |
//! | L8   | Every backup-region write reachable from a `recover*`/`replay`/`redo` entry point is WAL-bracketed: `backup_wal` intent before, WAL seal after |
//! | L9   | Concurrency-readiness: no `static mut`/`thread_local!`/`Cell`/`RefCell`/`UnsafeCell` in `crates/core`+`crates/mem` production code; store effects only behind `&mut self` |
//! | L10  | Commit-record and security-root persists in `crates/core` are fence-dominated: a persist-buffer drain (`wpq_fence`) precedes them in the same body |
//!
//! L1–L6 work on the token stream plus the [`FileIndex`] item index — no
//! type information. L7–L10 additionally consult the workspace
//! [`CallGraph`](crate::graph::CallGraph) and the transitive persistence
//! effects inferred by [`crate::effects`]. That makes them conservative
//! pattern matchers; the escape hatch for a justified exception is
//! `lint.baseline`, never an in-code `#[allow]`.

use std::collections::HashSet;

use crate::effects::{self, FnFacts};
use crate::graph::CallGraph;
use crate::lexer::Tok;
use crate::source::FileIndex;

/// One violation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Diagnostic {
    /// Rule ID (`"L1"`..`"L10"`).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub msg: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}:{} {}", self.rule, self.file, self.line, self.msg)
    }
}

/// Fields of the controller/baselines that hold a raw `SparseStore`, plus
/// the conventional local name `store`. A call `<receiver>.<mutator>(…)`
/// outside the sanctioned sites is a raw NVM write escaping the sealed
/// persistence APIs.
pub(crate) const STORE_RECEIVERS: &[&str] =
    &["store", "committed", "committed_prev", "visible", "buffer_data"];

/// `SparseStore` mutating methods.
pub(crate) const STORE_MUTATORS: &[&str] = &["write", "write_words", "copy_within", "clear"];

/// L1 allowlist: (file, functions) where raw store mutation is sealed by
/// WAL/commit protocol or models power-loss volatility.
const L1_ALLOW: &[(&str, &[&str])] = &[
    // Commit point of a retired checkpoint job (`commit_job`, shared by
    // normal retirement and the crash-time WPQ early-commit path);
    // CPU-visible store-through; DRAM-poison quarantine rolling visible
    // bytes back to the checkpoint; tamper injection modeling an
    // attacker's out-of-band NVM writes (the bypass of the sealed path is
    // the point — recovery must catch it).
    ("crates/core/src/controller.rs", &["retire_job_if_done", "commit_job", "store_bytes", "quarantine_rollback", "apply_tamper"]),
    // Journal flush (redo applied under the commit record) + buffer fill.
    ("crates/baselines/src/journal.rs", &["flush", "store_bytes", "power_fail"]),
    // Shadow-paging flush, copy-on-write buffer fill, volatility model.
    ("crates/baselines/src/shadow.rs", &["flush", "ensure_buffered", "store_bytes", "power_fail"]),
];

/// Files where the panic-free discipline applies to every function — the
/// translation tables and version-state machine are recovery-critical end
/// to end, tests included (a test `unwrap` hides the invariant it relies
/// on; `expect("invariant: …")` states it).
const PANIC_FREE_FILES: &[&str] = &["crates/core/src/table.rs", "crates/core/src/protocol.rs"];

/// Underscore-separated name segments that mark a function as part of the
/// recovery/replay/scrub machinery.
const RECOVERY_SEGMENTS: &[&str] = &["recover", "recovery", "replay", "scrub", "wal", "redo"];

/// Annotation comment that opts a function into the L2 recovery scope.
const RECOVERY_ANNOTATION: &str = "lint: recovery-path";

/// Macros that abort the process.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// `expect` messages the lint accepts: a statement of the invariant that
/// makes the call infallible.
const EXPECT_PREFIX: &str = "invariant:";

/// Runs every rule over the indexed workspace.
pub fn check_all(files: &[FileIndex]) -> Vec<Diagnostic> {
    let graph = CallGraph::build(files);
    let facts = effects::analyze(files, &graph);
    let mut out = Vec::new();
    for f in files {
        rule_l1(f, &mut out);
        rule_l2(f, &mut out);
        rule_l6(f, &mut out);
    }
    rule_l3(files, &mut out);
    rule_l4(files, &mut out);
    rule_l5(files, &mut out);
    rule_l7(files, &graph, &facts, &mut out);
    rule_l8(files, &graph, &facts, &mut out);
    rule_l9(files, &graph, &facts, &mut out);
    rule_l10(files, &graph, &facts, &mut out);
    // Deduplicate (a fn can be in scope via both its name and its file) and
    // order deterministically.
    let mut seen = HashSet::new();
    out.retain(|d| seen.insert((d.rule, d.file.clone(), d.line, d.msg.clone())));
    out.sort_by(|a, b| {
        (a.rule, &a.file, a.line, &a.msg).cmp(&(b.rule, &b.file, b.line, &b.msg))
    });
    out
}

/// Whether `rel_path` is an integration-test file (everything under a
/// `tests/` directory is test code even without `#[cfg(test)]`).
fn is_test_file(rel_path: &str) -> bool {
    rel_path.starts_with("tests/") || rel_path.contains("/tests/")
}

/// Whether token `i` of `f` is test code (mask or test file).
fn in_test(f: &FileIndex, i: usize) -> bool {
    is_test_file(&f.rel_path) || f.is_test(i)
}

// ---------------------------------------------------------------- L1 ----

/// L1: raw-NVM-write confinement.
fn rule_l1(f: &FileIndex, out: &mut Vec<Diagnostic>) {
    if f.rel_path.starts_with("crates/mem/") {
        return; // the store's home crate
    }
    let allow: &[&str] = L1_ALLOW
        .iter()
        .find(|(path, _)| *path == f.rel_path)
        .map_or(&[], |(_, fns)| fns);
    let toks = &f.tokens;
    for i in 0..toks.len().saturating_sub(3) {
        if !toks[i + 1].is_punct(".") {
            continue;
        }
        let (Some(recv), Some(method)) = (toks[i].kind.ident(), toks[i + 2].kind.ident()) else {
            continue;
        };
        if !STORE_RECEIVERS.contains(&recv)
            || !STORE_MUTATORS.contains(&method)
            || !toks[i + 3].is_punct("(")
        {
            continue;
        }
        if in_test(f, i) {
            continue;
        }
        if let Some(func) = f.enclosing_fn(i) {
            if allow.contains(&func.name.as_str()) {
                continue;
            }
        }
        out.push(Diagnostic {
            rule: "L1",
            file: f.rel_path.clone(),
            line: toks[i].line,
            msg: format!(
                "raw SparseStore mutation `{recv}.{method}(..)` outside crates/mem and the \
                 WAL/commit-sealed allowlist"
            ),
        });
    }
}

// ---------------------------------------------------------------- L2 ----

/// Whether a function name marks it as recovery machinery.
fn l2_name_in_scope(name: &str) -> bool {
    name.split('_').any(|seg| {
        RECOVERY_SEGMENTS.contains(&seg) || seg.starts_with("recover") || seg.starts_with("scrub")
    })
}

/// L2: panic-free recovery.
fn rule_l2(f: &FileIndex, out: &mut Vec<Diagnostic>) {
    let whole_file = PANIC_FREE_FILES.contains(&f.rel_path.as_str());
    if whole_file {
        // Tests in these files get the unwrap/expect discipline only
        // (asserts and literal indices are the point of a test); production
        // code gets the full rule.
        scan_l2(f, 0, f.tokens.len(), true, out);
    }
    for func in &f.fns {
        if func.in_test || is_test_file(&f.rel_path) {
            continue;
        }
        let annotated = f.comment_above(func.line, 5, RECOVERY_ANNOTATION);
        if !(l2_name_in_scope(&func.name) || annotated) {
            continue;
        }
        if let Some(start) = func.body_start {
            scan_l2(f, start, func.body_end, false, out);
        }
    }
}

/// Scans a token range for L2 violations. With `relax_tests`, tokens in
/// test code are only checked for `unwrap`/bare `expect`.
fn scan_l2(f: &FileIndex, from: usize, to: usize, relax_tests: bool, out: &mut Vec<Diagnostic>) {
    let toks = &f.tokens;
    let to = to.min(toks.len());
    let mut push = |line: u32, msg: String| {
        out.push(Diagnostic { rule: "L2", file: f.rel_path.clone(), line, msg });
    };
    for i in from..to {
        let test_here = in_test(f, i);
        if relax_tests && test_here {
            // fall through: unwrap/expect still checked below
        } else if !relax_tests && test_here {
            continue;
        }
        // `.unwrap()` / `.expect(…)`.
        if toks[i].is_punct(".") {
            if let Some(name) = toks.get(i + 1).and_then(|t| t.kind.ident()) {
                if name == "unwrap" && toks.get(i + 2).is_some_and(|t| t.is_punct("(")) {
                    push(toks[i].line, "`.unwrap()` on a recovery path".to_owned());
                    continue;
                }
                if name == "expect" && toks.get(i + 2).is_some_and(|t| t.is_punct("(")) {
                    let ok = matches!(
                        toks.get(i + 3).map(|t| &t.kind),
                        Some(Tok::Str(msg)) if msg.trim_start().starts_with(EXPECT_PREFIX)
                    );
                    if !ok {
                        push(
                            toks[i].line,
                            format!(
                                "`.expect(..)` without an `\"{EXPECT_PREFIX} …\"` message \
                                 stating why it cannot fail"
                            ),
                        );
                    }
                    continue;
                }
            }
        }
        if test_here {
            continue; // relaxed region: only the checks above apply
        }
        // Aborting macros: `panic!(` etc.
        if let Some(name) = toks[i].kind.ident() {
            if PANIC_MACROS.contains(&name)
                && toks.get(i + 1).is_some_and(|t| t.is_punct("!"))
                && toks.get(i + 2).is_some_and(|t| t.is_punct("(") || t.is_punct("["))
            {
                push(toks[i].line, format!("`{name}!` on a recovery path"));
                continue;
            }
        }
        // Literal indexing `ident[0]` — a hidden bounds panic.
        if toks[i].kind.ident().is_some()
            && toks.get(i + 1).is_some_and(|t| t.is_punct("["))
            && toks.get(i + 2).is_some_and(|t| t.kind.is_int())
            && toks.get(i + 3).is_some_and(|t| t.is_punct("]"))
        {
            push(
                toks[i].line,
                "literal slice index on a recovery path (use `.get(..)`)".to_owned(),
            );
        }
    }
}

// ---------------------------------------------------------------- L3 ----

const STATS_FILE: &str = "crates/types/src/stats.rs";
const STATS_STRUCTS: &[&str] = &[
    "MemStats",
    "MediaStats",
    "DramStats",
    "PerfStats",
    "SecurityStats",
    "HealthStats",
    "RetryStats",
    "WpqStats",
];
/// Functions that touch every field wholesale; counting them would make the
/// mutation check vacuous.
const L3_EXEMPT_FNS: &[&str] = &["merge", "reset", "clear"];
/// Collection growth calls that count as mutating a `Vec` field.
const GROW_CALLS: &[&str] = &["push", "insert", "extend", "append"];

/// L3: counter conservation.
fn rule_l3(files: &[FileIndex], out: &mut Vec<Diagnostic>) {
    let Some(stats) = files.iter().find(|f| f.rel_path == STATS_FILE) else {
        return;
    };
    for field in &stats.fields {
        if !STATS_STRUCTS.contains(&field.owner.as_str()) {
            continue;
        }
        if field.ty == "MediaStats"
            || field.ty == "DramStats"
            || field.ty == "PerfStats"
            || field.ty == "SecurityStats"
            || field.ty == "HealthStats"
            || field.ty == "RetryStats"
            || field.ty == "WpqStats"
        {
            continue; // aggregate of counters, each checked individually
        }
        let mut mutated = false;
        let mut tested = false;
        for f in files {
            let toks = &f.tokens;
            for i in 0..toks.len() {
                if !toks[i].kind.is_ident(&field.name) {
                    continue;
                }
                if in_test(f, i) {
                    tested = true;
                    continue;
                }
                if mutated || i == 0 || !toks[i - 1].is_punct(".") {
                    continue;
                }
                let writes = match toks.get(i + 1).map(|t| &t.kind) {
                    Some(Tok::Punct("+=" | "-=" | "=")) => true,
                    Some(Tok::Punct(".")) => {
                        toks.get(i + 2)
                            .and_then(|t| t.kind.ident())
                            .is_some_and(|m| GROW_CALLS.contains(&m))
                            && toks.get(i + 3).is_some_and(|t| t.is_punct("("))
                    }
                    _ => false,
                };
                if writes
                    && !f
                        .enclosing_fn(i)
                        .is_some_and(|func| L3_EXEMPT_FNS.contains(&func.name.as_str()))
                {
                    mutated = true;
                }
            }
        }
        if !mutated {
            out.push(Diagnostic {
                rule: "L3",
                file: STATS_FILE.to_owned(),
                line: field.line,
                msg: format!(
                    "dead counter `{}::{}`: never mutated in non-test code (outside merge/reset)",
                    field.owner, field.name
                ),
            });
        }
        if !tested {
            out.push(Diagnostic {
                rule: "L3",
                file: STATS_FILE.to_owned(),
                line: field.line,
                msg: format!(
                    "unverified counter `{}::{}`: never referenced by any test",
                    field.owner, field.name
                ),
            });
        }
    }
}

// ---------------------------------------------------------------- L4 ----

const ERROR_FILE: &str = "crates/types/src/error.rs";

/// L4: error-variant coverage.
fn rule_l4(files: &[FileIndex], out: &mut Vec<Diagnostic>) {
    let Some(errors) = files.iter().find(|f| f.rel_path == ERROR_FILE) else {
        return;
    };
    for variant in errors.variants.iter().filter(|v| v.owner == "Error") {
        let mut constructed = false;
        let mut tested = false;
        for f in files {
            let toks = &f.tokens;
            for i in 0..toks.len().saturating_sub(2) {
                if !(toks[i].kind.is_ident("Error")
                    && toks[i + 1].is_punct("::")
                    && toks[i + 2].kind.is_ident(&variant.name))
                {
                    continue;
                }
                if in_test(f, i) {
                    tested = true;
                } else if f.rel_path != ERROR_FILE {
                    // Display/From impls in error.rs itself don't count as a
                    // production use.
                    constructed = true;
                }
            }
        }
        if !constructed {
            out.push(Diagnostic {
                rule: "L4",
                file: ERROR_FILE.to_owned(),
                line: variant.line,
                msg: format!(
                    "error variant `Error::{}` is never constructed in production code",
                    variant.name
                ),
            });
        }
        if !tested {
            out.push(Diagnostic {
                rule: "L4",
                file: ERROR_FILE.to_owned(),
                line: variant.line,
                msg: format!(
                    "error variant `Error::{}` is never matched in any test",
                    variant.name
                ),
            });
        }
    }
}

// ---------------------------------------------------------------- L5 ----

const CONFIG_FILE: &str = "crates/types/src/config.rs";
const CONFIG_STRUCTS: &[&str] = &[
    "SystemConfig",
    "ThyNvmConfig",
    "MediaFaultConfig",
    "DramFaultConfig",
    "SecurityConfig",
    "HealthConfig",
    "PersistBufferConfig",
];
const NUMERIC_TYPES: &[&str] = &["u8", "u16", "u32", "u64", "u128", "usize", "f32", "f64"];

/// L5: config-validation completeness (numeric fields — booleans and
/// sub-structs carry no range to check).
fn rule_l5(files: &[FileIndex], out: &mut Vec<Diagnostic>) {
    let Some(config) = files.iter().find(|f| f.rel_path == CONFIG_FILE) else {
        return;
    };
    // Idents mentioned anywhere inside `fn validate` bodies.
    let mut checked: HashSet<&str> = HashSet::new();
    for func in config.fns.iter().filter(|f| f.name == "validate") {
        if let Some(start) = func.body_start {
            for t in &config.tokens[start..func.body_end.min(config.tokens.len())] {
                if let Some(id) = t.kind.ident() {
                    checked.insert(id);
                }
            }
        }
    }
    for field in &config.fields {
        if !CONFIG_STRUCTS.contains(&field.owner.as_str())
            || !NUMERIC_TYPES.contains(&field.ty.as_str())
        {
            continue;
        }
        if !checked.contains(field.name.as_str()) {
            out.push(Diagnostic {
                rule: "L5",
                file: CONFIG_FILE.to_owned(),
                line: field.line,
                msg: format!(
                    "config field `{}::{}` is not checked in validate()",
                    field.owner, field.name
                ),
            });
        }
    }
}

// ---------------------------------------------------------------- L6 ----

/// The one file allowed to do backoff arithmetic: the policy itself.
const RETRY_POLICY_FILE: &str = "crates/types/src/retry.rs";

/// L6: retry-policy unification. Multiplying a `*backoff_ns` knob by an
/// attempt counter is the signature of a hand-rolled backoff loop. Every
/// bounded retry must route through `types::RetryPolicy`, which owns the
/// one sanctioned multiplication — that keeps retry budgets, schedules,
/// and the `RetryStats` conservation counters in a single place.
fn rule_l6(f: &FileIndex, out: &mut Vec<Diagnostic>) {
    if f.rel_path == RETRY_POLICY_FILE {
        return;
    }
    let toks = &f.tokens;
    for i in 0..toks.len() {
        let Some(name) = toks[i].kind.ident() else {
            continue;
        };
        if !name.ends_with("backoff_ns") || in_test(f, i) {
            continue;
        }
        // Walk back over the field-access chain so `attempt * cfg.retry_backoff_ns`
        // is caught as well as `retry_backoff_ns * attempt`.
        let mut j = i;
        while j >= 2 && toks[j - 1].is_punct(".") && toks[j - 2].kind.ident().is_some() {
            j -= 2;
        }
        let mul_before = j > 0 && toks[j - 1].is_punct("*");
        let mul_after = toks.get(i + 1).is_some_and(|t| t.is_punct("*"));
        if mul_before || mul_after {
            out.push(Diagnostic {
                rule: "L6",
                file: f.rel_path.clone(),
                line: toks[i].line,
                msg: format!(
                    "manual backoff arithmetic on `{name}`: route bounded retries \
                     through `types::RetryPolicy` instead of hand-rolling the schedule"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------- L7 ----

/// Effects forbidden after the commit-record seal. `BackupWal`, spare and
/// store effects are allowed — post-commit background work (scrub, remap)
/// mutates those under its own WAL discipline, which is L8's domain.
const L7_FORBIDDEN: u16 = effects::BACKUP
    | effects::COMMIT_RECORD
    | effects::SECURITY_COUNTERS
    | effects::SECURITY_TREE
    | effects::SECURITY_ROOT;

/// L7: the commit-record persist is the last backup/security effect of a
/// checkpoint-commit body. Scope: every production function that writes the
/// commit record (`backup(0)`) directly. After the (last) seal write, no
/// direct write and no call with transitive [`L7_FORBIDDEN`] effects may
/// appear — anything after the seal belonging to the checkpoint would not
/// be covered by its atomic commit.
fn rule_l7(files: &[FileIndex], graph: &CallGraph, facts: &[FnFacts], out: &mut Vec<Diagnostic>) {
    for (n, node) in graph.nodes.iter().enumerate() {
        let fx = &facts[n];
        let Some(seal) = fx
            .writes
            .iter()
            .filter(|w| w.region == effects::COMMIT_RECORD)
            .map(|w| w.tok)
            .max()
        else {
            continue;
        };
        let f = &files[node.file];
        let name = &f.fns[node.item].name;
        for w in fx.writes.iter().filter(|w| w.tok > seal) {
            if w.region & L7_FORBIDDEN != 0 {
                out.push(Diagnostic {
                    rule: "L7",
                    file: f.rel_path.clone(),
                    line: w.line,
                    msg: format!(
                        "`{}` write after the commit-record seal in `{name}` — the commit \
                         persist must be the last backup/security effect of a checkpoint commit",
                        effects::region_name(w.region)
                    ),
                });
            }
        }
        for call in node.calls.iter().filter(|c| c.tok > seal) {
            let mut eff = 0u16;
            for &e in &call.edges {
                eff |= facts[e].transitive;
            }
            let bad = eff & L7_FORBIDDEN;
            if bad != 0 {
                out.push(Diagnostic {
                    rule: "L7",
                    file: f.rel_path.clone(),
                    line: call.line,
                    msg: format!(
                        "call to `{}` (effects: {}) after the commit-record seal in `{name}` — \
                         no backup/security effect may follow the seal",
                        call.callee,
                        effects::labels(bad)
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------- L8 ----

/// Regions whose writes on recovery paths must be WAL-bracketed: the backup
/// metadata images and the commit record. WAL writes themselves are the
/// bracket; working/spare/security writes have their own rules.
const L8_GUARDED: u16 = effects::BACKUP | effects::COMMIT_RECORD;

/// Whether a function name marks a recovery entry point for L8 (narrower
/// than L2's segment list: scrub/wal maintenance is not recovery).
fn l8_entry(name: &str) -> bool {
    name.split('_')
        .any(|seg| seg == "recovery" || seg == "replay" || seg == "redo" || seg.starts_with("recover"))
}

/// Crates whose `recover*` functions are actual recovery machinery. Bench
/// drivers measuring recovery (`e13_recovery_time`) are not entry points —
/// they legitimately run checkpoints around the recovery they time.
fn l8_entry_file(rel_path: &str) -> bool {
    rel_path.starts_with("crates/core/") || rel_path.starts_with("crates/baselines/")
}

/// L8: every backup-region write reachable from a recovery entry point is
/// dominated by a WAL intent record (`backup_wal(..)`) and followed by a
/// WAL seal (`wal_seals += 1`) in the same body. Recovery runs before the
/// next checkpoint exists, so an unsealed backup write is exactly the state
/// a second crash cannot undo.
fn rule_l8(files: &[FileIndex], graph: &CallGraph, facts: &[FnFacts], out: &mut Vec<Diagnostic>) {
    let entries: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            l8_entry_file(&files[n.file].rel_path) && l8_entry(&files[n.file].fns[n.item].name)
        })
        .map(|(i, _)| i)
        .collect();
    if entries.is_empty() {
        return;
    }
    let seen = graph.reachable(&entries);
    for (n, node) in graph.nodes.iter().enumerate() {
        if !seen[n] {
            continue;
        }
        let fx = &facts[n];
        let f = &files[node.file];
        let name = &f.fns[node.item].name;
        for w in &fx.writes {
            if w.region & L8_GUARDED == 0 {
                continue;
            }
            let begun = fx.wal_begins.iter().any(|&b| b < w.tok);
            let sealed = fx.wal_seals.iter().any(|&s| s > w.tok);
            if !(begun && sealed) {
                out.push(Diagnostic {
                    rule: "L8",
                    file: f.rel_path.clone(),
                    line: w.line,
                    msg: format!(
                        "un-WAL-bracketed `{}` write in `{name}` on a recovery-reachable path — \
                         record a `backup_wal(..)` intent before it and seal the WAL \
                         (`wal_seals += 1`) after it",
                        effects::region_name(w.region)
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------- L9 ----

/// Interior-mutability types banned from the concurrency-audited crates.
const L9_CELL_TYPES: &[&str] = &["Cell", "RefCell", "UnsafeCell"];

/// Whether `rel_path` is in the crates the sharding arc will make
/// concurrent.
fn l9_scope(rel_path: &str) -> bool {
    rel_path.starts_with("crates/core/") || rel_path.starts_with("crates/mem/")
}

/// L9: concurrency-readiness audit for the sharded front-end. Production
/// code in `crates/core`/`crates/mem` must not smuggle shared mutability
/// (`static mut`, `thread_local!`, `Cell`/`RefCell`/`UnsafeCell`), and
/// store effects anywhere in the workspace must be confined to `&mut self`
/// methods so exclusive access is visible in every signature.
fn rule_l9(files: &[FileIndex], graph: &CallGraph, facts: &[FnFacts], out: &mut Vec<Diagnostic>) {
    for f in files {
        if !l9_scope(&f.rel_path) || is_test_file(&f.rel_path) {
            continue;
        }
        let toks = &f.tokens;
        for i in 0..toks.len() {
            if in_test(f, i) {
                continue;
            }
            let Some(name) = toks[i].kind.ident() else { continue };
            if name == "static" && toks.get(i + 1).is_some_and(|t| t.kind.is_ident("mut")) {
                out.push(Diagnostic {
                    rule: "L9",
                    file: f.rel_path.clone(),
                    line: toks[i].line,
                    msg: "`static mut` in concurrency-audited production code".to_owned(),
                });
            }
            if name == "thread_local" && toks.get(i + 1).is_some_and(|t| t.is_punct("!")) {
                out.push(Diagnostic {
                    rule: "L9",
                    file: f.rel_path.clone(),
                    line: toks[i].line,
                    msg: "`thread_local!` in concurrency-audited production code".to_owned(),
                });
            }
            if L9_CELL_TYPES.contains(&name) {
                out.push(Diagnostic {
                    rule: "L9",
                    file: f.rel_path.clone(),
                    line: toks[i].line,
                    msg: format!(
                        "interior mutability (`{name}`) in concurrency-audited production code \
                         — crates/core and crates/mem must stay shard-confinable"
                    ),
                });
            }
        }
    }
    // Store-effect confinement: a direct `SparseStore` mutation in a method
    // that does not take `&mut self` hides a write behind a shared borrow.
    for (n, node) in graph.nodes.iter().enumerate() {
        let fx = &facts[n];
        if fx.direct & effects::STORE == 0 || fx.mut_self {
            continue;
        }
        let f = &files[node.file];
        let name = &f.fns[node.item].name;
        for &(_, line) in &fx.stores {
            out.push(Diagnostic {
                rule: "L9",
                file: f.rel_path.clone(),
                line,
                msg: format!(
                    "store mutation in `{name}`, which does not take `&mut self` — store \
                     effects must be confined to exclusive-borrow methods"
                ),
            });
        }
    }
}

// --------------------------------------------------------------- L10 ----

/// Regions whose direct persists must be fence-dominated: the checkpoint
/// commit record and the security-metadata root. Both are atomic
/// "everything before me is durable" records — a persist-buffer entry
/// still pending when they land is exactly the §4.4 reordering window a
/// crash can exploit.
const L10_FENCED: u16 = effects::COMMIT_RECORD | effects::SECURITY_ROOT;

/// Crates whose device writes pass through the controller's volatile
/// persist buffer. Baselines issue writes directly (no WPQ), so the fence
/// obligation does not apply there.
fn l10_scope(rel_path: &str) -> bool {
    rel_path.starts_with("crates/core/")
}

/// L10: fence-dominated commit persists. Every direct commit-record or
/// security-root write in `crates/core` production code must be preceded,
/// in the same body, by a persist-buffer drain (`.wpq_fence(..)` or a
/// direct `.fence(..)` on the buffer). The dynamic twin of this rule is
/// the controller's `Error::UnfencedCommit` audit; this static form
/// catches the ordering bug before any crash test has to.
fn rule_l10(files: &[FileIndex], graph: &CallGraph, facts: &[FnFacts], out: &mut Vec<Diagnostic>) {
    for (n, node) in graph.nodes.iter().enumerate() {
        let f = &files[node.file];
        if !l10_scope(&f.rel_path) {
            continue;
        }
        let fx = &facts[n];
        let name = &f.fns[node.item].name;
        for w in fx.writes.iter().filter(|w| w.region & L10_FENCED != 0) {
            if !fx.fences.iter().any(|&b| b < w.tok) {
                out.push(Diagnostic {
                    rule: "L10",
                    file: f.rel_path.clone(),
                    line: w.line,
                    msg: format!(
                        "unfenced `{}` persist in `{name}` — drain the persist buffer \
                         (`wpq_fence`) before the record that covers buffered writes lands",
                        effects::region_name(w.region)
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(rel: &str, src: &str) -> Vec<Diagnostic> {
        check_all(&[FileIndex::parse(rel, src)])
    }

    #[test]
    fn l1_flags_rogue_store_write() {
        let diags = one(
            "crates/core/src/rogue.rs",
            "fn sneak(&mut self) { self.committed.write(a, b); }",
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "L1");
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn l1_allows_mem_crate_and_allowlist_and_tests() {
        assert!(one(
            "crates/mem/src/store.rs",
            "fn write_impl(&mut self) { self.committed.write(a, b); }"
        )
        .is_empty());
        assert!(one(
            "crates/core/src/controller.rs",
            "fn retire_job_if_done(&mut self) { self.committed.write(a, b); }"
        )
        .is_empty());
        assert!(one(
            "crates/core/src/x.rs",
            "#[cfg(test)] mod t { fn f() { store.write(a, b); } }"
        )
        .is_empty());
    }

    #[test]
    fn l2_scopes_by_name_and_annotation() {
        let diags = one(
            "crates/core/src/r.rs",
            "fn recovery_step(&self) { x.unwrap(); }\nfn helper(&self) { y.unwrap(); }\n",
        );
        assert_eq!(diags.len(), 1, "only the recovery fn is in scope: {diags:?}");
        assert_eq!(diags[0].line, 1);

        let diags = one(
            "crates/core/src/r.rs",
            "// lint: recovery-path\nfn helper(&self) { y.unwrap(); }\n",
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn l2_accepts_invariant_expect_only() {
        let src = concat!(
            "fn scrub_pass(&self) {\n",
            "    a.expect(\"invariant: scheduled earlier\");\n",
            "    b.expect(\"just because\");\n",
            "}\n",
        );
        let diags = one("crates/core/src/s.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn l2_flags_panics_and_literal_indexing() {
        let src = concat!(
            "fn redo_log(&self) {\n",
            "    if bad { panic!(\"no\"); }\n",
            "    let v = slots[0];\n",
            "    let w = slots[i];\n", // variable index: allowed
            "}\n",
        );
        let diags = one("crates/core/src/s.rs", src);
        let lines: Vec<u32> = diags.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![2, 3]);
    }

    #[test]
    fn l2_panic_free_file_covers_tests_for_unwrap_only() {
        let src = concat!(
            "fn plain(&self) { x.unwrap(); }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() { assert_eq!(v[0], 1); y.unwrap(); }\n",
            "}\n",
        );
        let diags = check_all(&[FileIndex::parse("crates/core/src/table.rs", src)]);
        // Production unwrap at line 1, test unwrap at line 5; the test's
        // literal index is tolerated.
        let lines: Vec<u32> = diags.iter().filter(|d| d.rule == "L2").map(|d| d.line).collect();
        assert_eq!(lines, vec![1, 5]);
    }

    const STATS_SRC: &str = concat!(
        "pub struct MemStats {\n",
        "    pub reads: u64,\n",
        "    pub writes: u64,\n",
        "}\n",
        "impl MemStats {\n",
        "    pub fn merge(&mut self, o: &MemStats) { self.reads += o.reads; self.writes += o.writes; }\n",
        "}\n",
    );

    #[test]
    fn l3_flags_dead_and_unverified_counters() {
        let user = concat!(
            "fn work(&mut self) { self.stats.reads += 1; }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() { assert_eq!(s.reads, 1); }\n",
            "}\n",
        );
        let files = [
            FileIndex::parse("crates/types/src/stats.rs", STATS_SRC),
            FileIndex::parse("crates/core/src/x.rs", user),
        ];
        let diags: Vec<_> =
            check_all(&files).into_iter().filter(|d| d.rule == "L3").collect();
        // `reads` is mutated + tested; `writes` is only touched by merge
        // (exempt) and never tested → two diagnostics, both at line 3.
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.line == 3));
        assert!(diags.iter().any(|d| d.msg.contains("dead counter")));
        assert!(diags.iter().any(|d| d.msg.contains("unverified counter")));
    }

    const ERROR_SRC: &str = concat!(
        "pub enum Error {\n",
        "    NoCheckpoint,\n",
        "    TableFull { table: &'static str },\n",
        "}\n",
    );

    #[test]
    fn l4_flags_unconstructed_and_untested_variants() {
        let user = concat!(
            "fn f() -> Result<(), Error> { Err(Error::NoCheckpoint) }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() { assert!(matches!(f(), Err(Error::NoCheckpoint))); }\n",
            "}\n",
        );
        let files = [
            FileIndex::parse("crates/types/src/error.rs", ERROR_SRC),
            FileIndex::parse("crates/core/src/x.rs", user),
        ];
        let diags: Vec<_> =
            check_all(&files).into_iter().filter(|d| d.rule == "L4").collect();
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.line == 3 && d.msg.contains("TableFull")));
    }

    #[test]
    fn l5_flags_unvalidated_numeric_fields_only() {
        let src = concat!(
            "pub struct MediaFaultConfig {\n",
            "    pub enabled: bool,\n",
            "    pub seed: u64,\n",
            "    pub max_read_retries: u32,\n",
            "}\n",
            "impl SystemConfig {\n",
            "    pub fn validate(&self) -> Result<()> {\n",
            "        if self.media.max_read_retries == 0 { return err(); }\n",
            "        Ok(())\n",
            "    }\n",
            "}\n",
        );
        let diags = one("crates/types/src/config.rs", src);
        let l5: Vec<_> = diags.iter().filter(|d| d.rule == "L5").collect();
        assert_eq!(l5.len(), 1, "{l5:?}");
        assert_eq!(l5[0].line, 3);
        assert!(l5[0].msg.contains("seed"));
    }

    #[test]
    fn l6_flags_manual_backoff_multiplication_both_sides() {
        let diags = one(
            "crates/core/src/x.rs",
            "fn spin(&self) { let wait = self.cfg.media.retry_backoff_ns * attempt; }",
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "L6");
        assert!(diags[0].msg.contains("retry_backoff_ns"));

        // Multiplier on the left of a field chain is the same hand-rolled loop.
        let diags = one(
            "crates/core/src/x.rs",
            "fn spin(&self) { let wait = attempt * self.cfg.dram_fault.refetch_backoff_ns; }",
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "L6");
        assert!(diags[0].msg.contains("refetch_backoff_ns"));
    }

    #[test]
    fn l7_flags_backup_effects_after_the_seal_directly_and_via_calls() {
        let src = concat!(
            "fn checkpoint_commit(&mut self, t: u64) {\n",
            "    let t = self.nvm.access(self.space.backup(8192), AccessKind::Write, 64, t);\n",
            "    let t = self.nvm.access(self.space.backup(0), AccessKind::Write, 64, t);\n",
            "    let t = self.nvm.access(self.space.backup(16384), AccessKind::Write, 64, t);\n",
            "    self.late_metadata(t);\n",
            "}\n",
            "fn late_metadata(&mut self, t: u64) {\n",
            "    self.nvm.access(self.space.security_root(), AccessKind::Write, 64, t);\n",
            "}\n",
        );
        let diags = one("crates/core/src/x.rs", src);
        let l7: Vec<_> = diags.iter().filter(|d| d.rule == "L7").collect();
        assert_eq!(l7.len(), 2, "{l7:?}");
        assert_eq!(l7[0].line, 4, "direct backup write after seal");
        assert_eq!(l7[1].line, 5, "call with security effects after seal");
        assert!(l7[1].msg.contains("late_metadata"));
    }

    #[test]
    fn l7_allows_wal_spare_and_store_work_after_the_seal() {
        let src = concat!(
            "fn checkpoint_commit(&mut self, t: u64) {\n",
            "    let t = self.nvm.access(self.space.backup(0), AccessKind::Write, 64, t);\n",
            "    self.retire(t);\n",
            "}\n",
            "fn retire(&mut self, t: u64) {\n",
            "    let wal = self.space.backup_wal(self.wal_seq);\n",
            "    let t = self.nvm.access(wal, AccessKind::Write, 64, t);\n",
            "    let t = self.nvm.access(self.space.spare_block(1), AccessKind::Write, 64, t);\n",
            "    let t = self.nvm.access(wal, AccessKind::Write, 64, t);\n",
            "    self.stats.media.wal_seals += 1;\n",
            "    self.committed.write(a, b);\n",
            "}\n",
        );
        let diags = one("crates/core/src/controller.rs", src);
        assert!(
            diags.iter().all(|d| d.rule != "L7"),
            "wal/spare/store effects are post-commit-legal: {diags:?}"
        );
    }

    #[test]
    fn l8_flags_unbracketed_backup_write_reached_transitively() {
        let src = concat!(
            "fn recover_all(&mut self, t: u64) { self.restore_tables(t); }\n",
            "fn restore_tables(&mut self, t: u64) {\n",
            "    self.nvm.access(self.space.backup(16384), AccessKind::Write, 64, t);\n",
            "}\n",
        );
        let diags = one("crates/core/src/x.rs", src);
        let l8: Vec<_> = diags.iter().filter(|d| d.rule == "L8").collect();
        assert_eq!(l8.len(), 1, "{l8:?}");
        assert_eq!(l8[0].line, 3);
        assert!(l8[0].msg.contains("restore_tables"));
    }

    #[test]
    fn l8_accepts_bracketed_writes_and_ignores_non_recovery_paths() {
        // Properly WAL-bracketed recovery write: clean.
        let bracketed = concat!(
            "fn redo_pass(&mut self, t: u64) {\n",
            "    let wal = self.space.backup_wal(self.wal_seq);\n",
            "    let t = self.nvm.access(wal, AccessKind::Write, 64, t);\n",
            "    let t = self.nvm.access(self.space.backup(8192), AccessKind::Write, 64, t);\n",
            "    let t = self.nvm.access(wal, AccessKind::Write, 64, t);\n",
            "    self.stats.media.wal_seals += 1;\n",
            "}\n",
        );
        assert!(one("crates/core/src/x.rs", bracketed).iter().all(|d| d.rule != "L8"));
        // The same unsealed write outside any recovery-reachable fn: L8 is
        // silent (L7/checkpoint rules own that space).
        let checkpoint_only = concat!(
            "fn persist_tables(&mut self, t: u64) {\n",
            "    self.nvm.access(self.space.backup(8192), AccessKind::Write, 64, t);\n",
            "}\n",
        );
        assert!(one("crates/core/src/x.rs", checkpoint_only).iter().all(|d| d.rule != "L8"));
    }

    #[test]
    fn l9_flags_interior_mutability_in_scope_only() {
        let src = "use std::cell::Cell;\nfn f() { static mut X: u64 = 0; }\n";
        let diags = one("crates/mem/src/smuggle.rs", src);
        let l9: Vec<_> = diags.iter().filter(|d| d.rule == "L9").collect();
        assert_eq!(l9.len(), 2, "{l9:?}");
        assert_eq!(l9[0].line, 1);
        assert!(l9[0].msg.contains("Cell"));
        assert_eq!(l9[1].line, 2);
        assert!(l9[1].msg.contains("static mut"));
        // Same tokens outside the audited crates: silent.
        assert!(one("crates/bench/src/x.rs", src).iter().all(|d| d.rule != "L9"));
        // And in test code: silent.
        let test_src = "#[cfg(test)]\nmod t {\n    use std::cell::RefCell;\n}\n";
        assert!(one("crates/core/src/x.rs", test_src).iter().all(|d| d.rule != "L9"));
    }

    #[test]
    fn l9_flags_store_mutation_without_mut_self() {
        let src = "fn peek_write(&self) { self.committed.write(a, b); }\n";
        let diags = one("crates/mem/src/store.rs", src);
        let l9: Vec<_> = diags.iter().filter(|d| d.rule == "L9").collect();
        assert_eq!(l9.len(), 1, "{l9:?}");
        assert_eq!(l9[0].line, 1);
        assert!(l9[0].msg.contains("peek_write"));
        // `&mut self` confines the effect: clean.
        let ok = "fn do_write(&mut self) { self.committed.write(a, b); }\n";
        assert!(one("crates/mem/src/store.rs", ok).iter().all(|d| d.rule != "L9"));
    }

    #[test]
    fn l10_requires_a_fence_before_commit_and_root_persists_in_core_only() {
        let src = concat!(
            "fn seal_unfenced(&mut self, t: u64) {\n",
            "    self.nvm.access(self.space.backup(0), AccessKind::Write, 64, t);\n",
            "}\n",
            "fn seal_fenced(&mut self, t: u64) {\n",
            "    let t = self.wpq_fence(t);\n",
            "    self.nvm.access(self.space.backup(0), AccessKind::Write, 64, t);\n",
            "}\n",
            "fn root_unfenced(&mut self, t: u64) {\n",
            "    self.nvm.access(self.space.security_root(), AccessKind::Write, 64, t);\n",
            "}\n",
            "fn metadata_needs_no_fence(&mut self, t: u64) {\n",
            "    self.nvm.access(self.space.backup(8192), AccessKind::Write, 64, t);\n",
            "}\n",
        );
        let diags = one("crates/core/src/x.rs", src);
        let l10: Vec<_> = diags.iter().filter(|d| d.rule == "L10").collect();
        assert_eq!(l10.len(), 2, "{l10:?}");
        assert_eq!(l10[0].line, 2);
        assert!(l10[0].msg.contains("commit_record"), "{}", l10[0].msg);
        assert_eq!(l10[1].line, 9);
        assert!(l10[1].msg.contains("security_root"), "{}", l10[1].msg);
        // Baselines persist their commit records without a WPQ: out of scope.
        assert!(one("crates/baselines/src/journal.rs", src).iter().all(|d| d.rule != "L10"));
    }

    #[test]
    fn l6_allows_policy_file_tests_and_plain_reads() {
        // The policy crate owns the one sanctioned multiplication.
        assert!(one(
            "crates/types/src/retry.rs",
            "fn backoff(&self, attempt: u32) { self.backoff_ns * u64::from(attempt); }"
        )
        .is_empty());
        // Test code may model schedules by hand to cross-check the policy.
        assert!(one(
            "crates/core/src/x.rs",
            "#[cfg(test)] mod t { fn t() { let w = backoff_ns * 3; } }"
        )
        .is_empty());
        // Passing the knob through (e.g. into RetryPolicy::new) is fine.
        assert!(one(
            "crates/core/src/x.rs",
            "fn mk(&self) { RetryPolicy::new(self.cfg.media.max_read_retries, self.cfg.media.retry_backoff_ns); }"
        )
        .is_empty());
    }
}
