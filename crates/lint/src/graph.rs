//! Workspace call graph over the [`FileIndex`] item index.
//!
//! One node per *production* function with a body (test functions and
//! integration-test files never enter the graph — their calls cannot put a
//! production function on a checked path). Edges come from name resolution
//! over call sites:
//!
//! * a call `name(..)` or `recv.name(..)` first resolves to functions named
//!   `name` **in the same file** (the workspace keeps each subsystem's
//!   helpers local, so this is almost always exact);
//! * only when the file defines no such function does it fall back to every
//!   production function with that name workspace-wide.
//!
//! That makes the graph an over-approximation — a method call on a foreign
//! type can edge to an unrelated same-named function — which is the safe
//! direction for the L7/L8 ordering rules: effects are never *missed*
//! through a call. Device accesses (`nvm.access(..)` / `dram.access(..)`)
//! are effect *seeds*, not calls, and are excluded here so the memory-system
//! entry point `access` does not edge every device touch into the whole
//! controller.

use std::collections::BTreeMap;

use crate::source::FileIndex;

/// Names that look like call syntax but never are (`if (..)`, `match (..)`).
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "move", "in", "as", "let", "else",
    "unsafe", "ref", "mut", "box", "await", "yield", "dyn", "impl", "where", "pub", "use",
    "crate", "super", "Self", "self",
];

/// Std container/`Option` method names that, invoked on a non-`self`
/// receiver, are almost certainly *not* calls into workspace functions —
/// `self.ckpting_log.drain(..)` must not edge to `Controller::drain`.
/// Dropping these edges loses no effects: `SparseStore` mutations through
/// these names are seeded directly at the call site by `crate::effects`.
const COLLECTION_METHODS: &[&str] = &[
    "drain", "push", "pop", "insert", "remove", "clear", "extend", "append", "retain", "take",
    "replace", "get", "set", "iter", "len", "contains", "entry", "write", "read", "clone",
    "split_off", "sort", "last", "first", "copy_within", "write_words",
];

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name as written.
    pub callee: String,
    /// Token index of the callee name.
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
    /// Node indices the name resolved to (sorted; empty for foreign calls).
    pub edges: Vec<usize>,
}

/// One production function in the graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index into the `files` slice the graph was built from.
    pub file: usize,
    /// Index into `files[file].fns`.
    pub item: usize,
    /// Call sites in body token order.
    pub calls: Vec<CallSite>,
}

/// The workspace call graph. Node order is deterministic: files in input
/// order (the lint driver sorts paths), functions in source order.
pub struct CallGraph {
    /// All nodes.
    pub nodes: Vec<FnNode>,
    /// `(file, item) → node` lookup.
    index: BTreeMap<(usize, usize), usize>,
}

impl CallGraph {
    /// Builds the graph over the indexed workspace.
    pub fn build(files: &[FileIndex]) -> CallGraph {
        let mut nodes = Vec::new();
        let mut index = BTreeMap::new();
        // name → nodes, per file and workspace-wide.
        let mut by_file: BTreeMap<(usize, String), Vec<usize>> = BTreeMap::new();
        let mut global: BTreeMap<String, Vec<usize>> = BTreeMap::new();

        for (fi, f) in files.iter().enumerate() {
            if is_test_file(&f.rel_path) {
                continue;
            }
            for (ii, item) in f.fns.iter().enumerate() {
                if item.in_test || item.body_start.is_none() {
                    continue;
                }
                let n = nodes.len();
                nodes.push(FnNode { file: fi, item: ii, calls: Vec::new() });
                index.insert((fi, ii), n);
                by_file.entry((fi, item.name.clone())).or_default().push(n);
                global.entry(item.name.clone()).or_default().push(n);
            }
        }

        for node in &mut nodes {
            let (fi, ii) = (node.file, node.item);
            let f = &files[fi];
            let item = &f.fns[ii];
            let Some(start) = item.body_start else { continue };
            let toks = &f.tokens;
            let end = item.body_end.min(toks.len());
            let mut calls = Vec::new();
            for i in start + 1..end.saturating_sub(1) {
                let Some(name) = toks[i].kind.ident() else { continue };
                if !toks.get(i + 1).is_some_and(|t| t.is_punct("(")) {
                    continue;
                }
                if NON_CALL_KEYWORDS.contains(&name) {
                    continue;
                }
                // A nested `fn name(` is a declaration, not a call.
                if i > 0 && toks[i - 1].kind.is_ident("fn") {
                    continue;
                }
                // Device accesses are effect seeds (see crate::effects), not
                // calls to the memory-system `access` entry points.
                if name == "access" && is_device_receiver(f, i) {
                    continue;
                }
                // `field.drain(..)` etc.: a std-container method, not a
                // workspace call (only `self.drain(..)` resolves).
                if COLLECTION_METHODS.contains(&name)
                    && i >= 2
                    && toks[i - 1].is_punct(".")
                    && !toks[i - 2].kind.is_ident("self")
                {
                    continue;
                }
                let key = (fi, name.to_owned());
                let edges = by_file
                    .get(&key)
                    .or_else(|| global.get(name))
                    .cloned()
                    .unwrap_or_default();
                calls.push(CallSite {
                    callee: name.to_owned(),
                    tok: i,
                    line: toks[i].line,
                    edges,
                });
            }
            node.calls = calls;
        }

        CallGraph { nodes, index }
    }

    /// The node for `files[file].fns[item]`, if it is in the graph.
    pub fn node_of(&self, file: usize, item: usize) -> Option<usize> {
        self.index.get(&(file, item)).copied()
    }

    /// Nodes reachable from `seeds` (inclusive), as a bitmap over node
    /// indices. Deterministic breadth-first walk.
    pub fn reachable(&self, seeds: &[usize]) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &s in seeds {
            if !seen[s] {
                seen[s] = true;
                queue.push(s);
            }
        }
        while let Some(n) = queue.pop() {
            for call in &self.nodes[n].calls {
                for &e in &call.edges {
                    if !seen[e] {
                        seen[e] = true;
                        queue.push(e);
                    }
                }
            }
        }
        seen
    }
}

/// Whether the `access` ident at token `i` is called on a device field
/// (`nvm.access(..)` / `dram.access(..)`).
pub(crate) fn is_device_receiver(f: &FileIndex, i: usize) -> bool {
    i >= 2
        && f.tokens[i - 1].is_punct(".")
        && f.tokens[i - 2]
            .kind
            .ident()
            .is_some_and(|r| r == "nvm" || r == "dram")
}

/// Whether `rel_path` is an integration-test file.
pub(crate) fn is_test_file(rel_path: &str) -> bool {
    rel_path.starts_with("tests/") || rel_path.contains("/tests/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(files: &[(&str, &str)]) -> (Vec<FileIndex>, CallGraph) {
        let idx: Vec<FileIndex> =
            files.iter().map(|(p, s)| FileIndex::parse(p, s)).collect();
        let g = CallGraph::build(&idx);
        (idx, g)
    }

    fn node_named(files: &[FileIndex], g: &CallGraph, name: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| files[n.file].fns[n.item].name == name)
            .unwrap_or_else(|| panic!("node {name} in graph"))
    }

    #[test]
    fn same_file_resolution_wins_over_global() {
        let (files, g) = graph_of(&[
            ("crates/a/src/lib.rs", "fn helper() {}\nfn top() { helper(); }\n"),
            ("crates/b/src/lib.rs", "fn helper() {}\n"),
        ]);
        let top = node_named(&files, &g, "top");
        let call = &g.nodes[top].calls[0];
        assert_eq!(call.callee, "helper");
        assert_eq!(call.edges.len(), 1, "{call:?}");
        assert_eq!(g.nodes[call.edges[0]].file, 0, "resolved to the same file");
    }

    #[test]
    fn cross_file_fallback_links_all_candidates() {
        let (files, g) = graph_of(&[
            ("crates/a/src/lib.rs", "fn top(&mut self) { self.observe(); }\n"),
            ("crates/b/src/lib.rs", "fn observe() {}\n"),
            ("crates/c/src/lib.rs", "fn observe() {}\n"),
        ]);
        let top = node_named(&files, &g, "top");
        assert_eq!(g.nodes[top].calls[0].edges.len(), 2);
    }

    #[test]
    fn test_fns_macros_and_keywords_are_not_calls() {
        let (files, g) = graph_of(&[(
            "crates/a/src/lib.rs",
            concat!(
                "fn top(x: u64) { if (x > 0) { panic!(\"no\"); } helper(); }\n",
                "fn helper() {}\n",
                "#[cfg(test)] mod t { #[test] fn probe() { helper(); } }\n",
            ),
        )]);
        let top = node_named(&files, &g, "top");
        let names: Vec<&str> =
            g.nodes[top].calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(names, vec!["helper"], "{names:?}");
        assert!(
            !g.nodes.iter().any(|n| files[n.file].fns[n.item].name == "probe"),
            "test fns stay out of the graph"
        );
    }

    #[test]
    fn device_access_is_not_a_call_edge() {
        let (files, g) = graph_of(&[(
            "crates/a/src/lib.rs",
            concat!(
                "fn access(&mut self) { self.touch(); }\n",
                "fn touch(&mut self) { let t = self.nvm.access(a, k, 64, t); }\n",
            ),
        )]);
        let touch = node_named(&files, &g, "touch");
        assert!(g.nodes[touch].calls.is_empty(), "{:?}", g.nodes[touch].calls);
    }

    #[test]
    fn reachability_is_transitive() {
        let (files, g) = graph_of(&[(
            "crates/a/src/lib.rs",
            concat!(
                "fn a(&mut self) { self.b(); }\n",
                "fn b(&mut self) { self.c(); }\n",
                "fn c(&mut self) {}\n",
                "fn d(&mut self) {}\n",
            ),
        )]);
        let a = node_named(&files, &g, "a");
        let seen = g.reachable(&[a]);
        for name in ["a", "b", "c"] {
            assert!(seen[node_named(&files, &g, name)], "{name} reachable");
        }
        assert!(!seen[node_named(&files, &g, "d")]);
    }
}
