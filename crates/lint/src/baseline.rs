//! The `lint.baseline` suppression file.
//!
//! Each line suppresses exactly one diagnostic and must carry a reviewed
//! justification:
//!
//! ```text
//! # comment
//! L5 crates/types/src/config.rs:288 — any u64 is a valid deterministic seed
//! ```
//!
//! The separator between the location and the justification is `—`, `--`,
//! or just whitespace. An entry without a justification is a hard error
//! (exit 2): an unexplained suppression is indistinguishable from a
//! swept-under-the-rug bug. An entry that no longer matches any diagnostic
//! is *stale* and reported as a violation so the baseline shrinks over
//! time instead of fossilizing.

use std::collections::HashSet;

use crate::rules::Diagnostic;

/// One parsed baseline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Rule ID (`"L1"`..`"L9"`).
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the suppressed diagnostic.
    pub line: u32,
    /// Why this suppression is sound.
    pub justification: String,
    /// Line of the entry in `lint.baseline` (for error reporting).
    pub at: u32,
}

/// A malformed baseline (exit code 2).
#[derive(Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line in `lint.baseline`.
    pub at: u32,
    /// What is wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.baseline:{}: {}", self.at, self.msg)
    }
}

/// Parses the baseline text. Empty/whitespace lines and `#` comments are
/// skipped.
pub fn parse(text: &str) -> Result<Vec<Entry>, ParseError> {
    let mut entries = Vec::new();
    for (n, raw) in text.lines().enumerate() {
        let at = u32::try_from(n).unwrap_or(u32::MAX).saturating_add(1);
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let rule = parts.next().unwrap_or_default();
        let loc = parts.next().unwrap_or_default();
        let rest = parts.next().unwrap_or_default().trim();
        if !matches!(rule, "L1" | "L2" | "L3" | "L4" | "L5" | "L6" | "L7" | "L8" | "L9") {
            return Err(ParseError {
                at,
                msg: format!("unknown rule `{rule}` (expected L1..L9)"),
            });
        }
        let Some((file, line_no)) = loc.rsplit_once(':') else {
            return Err(ParseError {
                at,
                msg: format!("bad location `{loc}` (expected file:line)"),
            });
        };
        let Ok(line_no) = line_no.parse::<u32>() else {
            return Err(ParseError {
                at,
                msg: format!("bad line number in `{loc}`"),
            });
        };
        let justification = rest
            .trim_start_matches(['—', '-'])
            .trim()
            .to_owned();
        if justification.is_empty() {
            return Err(ParseError {
                at,
                msg: "entry has no justification — every suppression must say why it is sound"
                    .to_owned(),
            });
        }
        entries.push(Entry {
            rule: rule.to_owned(),
            file: file.to_owned(),
            line: line_no,
            justification,
            at,
        });
    }
    Ok(entries)
}

/// Splits diagnostics into (unsuppressed, stale-entry diagnostics).
///
/// A baseline entry matches a diagnostic on (rule, file, line). Entries
/// that match nothing come back as synthetic diagnostics so the run still
/// fails — a stale suppression means the code moved and the baseline must
/// be re-reviewed.
pub fn apply(diags: Vec<Diagnostic>, baseline: &[Entry]) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
    let keys: HashSet<(String, String, u32)> = baseline
        .iter()
        .map(|e| (e.rule.clone(), e.file.clone(), e.line))
        .collect();
    let mut used: HashSet<(String, String, u32)> = HashSet::new();
    let mut remaining = Vec::new();
    for d in diags {
        let key = (d.rule.to_owned(), d.file.clone(), d.line);
        if keys.contains(&key) {
            used.insert(key);
        } else {
            remaining.push(d);
        }
    }
    let stale = baseline
        .iter()
        .filter(|e| !used.contains(&(e.rule.clone(), e.file.clone(), e.line)))
        .map(|e| Diagnostic {
            rule: "L0",
            file: "lint.baseline".to_owned(),
            line: e.at,
            msg: format!(
                "stale baseline entry `{} {}:{}` matches no current diagnostic",
                e.rule, e.file, e.line
            ),
        })
        .collect();
    (remaining, stale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_comments() {
        let text = "# header\n\nL5 crates/types/src/config.rs:288 — any u64 seed is valid\n";
        let entries = parse(text).expect("valid baseline");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "L5");
        assert_eq!(entries[0].file, "crates/types/src/config.rs");
        assert_eq!(entries[0].line, 288);
        assert_eq!(entries[0].justification, "any u64 seed is valid");
    }

    #[test]
    fn rejects_missing_justification() {
        let err = parse("L2 a.rs:10\n").expect_err("must reject");
        assert!(err.msg.contains("justification"), "{err}");
        assert_eq!(err.at, 1);
        let err = parse("L2 a.rs:10 —  \n").expect_err("must reject");
        assert!(err.msg.contains("justification"), "{err}");
    }

    #[test]
    fn rejects_bad_rule_and_location() {
        assert!(parse("L12 a.rs:1 x\n").is_err());
        assert!(parse("L0 a.rs:1 x\n").is_err());
        assert!(parse("L1 a.rs x\n").is_err());
        assert!(parse("L1 a.rs:zz x\n").is_err());
        // The graph-backed rules are baselineable like the rest.
        assert!(parse("L8 a.rs:1 — reviewed: sealed by the outer txn\n").is_ok());
    }

    fn diag(rule: &'static str, file: &str, line: u32) -> Diagnostic {
        Diagnostic { rule, file: file.to_owned(), line, msg: "m".to_owned() }
    }

    #[test]
    fn suppresses_matching_and_reports_stale() {
        let baseline = parse(
            "L1 a.rs:5 — sealed by design\nL2 gone.rs:7 — obsolete entry\n",
        )
        .expect("valid");
        let (remaining, stale) =
            apply(vec![diag("L1", "a.rs", 5), diag("L1", "a.rs", 6)], &baseline);
        assert_eq!(remaining.len(), 1);
        assert_eq!(remaining[0].line, 6);
        assert_eq!(stale.len(), 1);
        assert!(stale[0].msg.contains("gone.rs:7"), "{}", stale[0].msg);
        assert_eq!(stale[0].line, 2);
    }
}
