//! A hand-rolled Rust lexer.
//!
//! The linter needs exactly enough lexical structure to walk token streams
//! with reliable line numbers: identifiers, literals (so that braces and
//! quotes inside strings never confuse the structural pass), multi-character
//! operators (so `+=` and `::` are single tokens), and comments (kept in a
//! side channel so `// lint: …` annotations can tag functions).
//!
//! It is deliberately *not* a full parser — no syn, no proc-macro2, nothing
//! that would need vendoring in the offline build environment. Rules match
//! on token patterns plus the lightweight item index built in
//! [`crate::source`].

/// Kind of one lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`fn`, `unwrap`, `MemStats`, `r#type`).
    Ident(String),
    /// A lifetime (`'a`, `'static`), distinguished from char literals.
    Lifetime(String),
    /// A numeric literal, raw text (`0x40`, `1_000`, `2.5e-9`, `63u8`).
    Num(String),
    /// A string or byte-string literal; the *cooked* prefix matters only for
    /// `expect("invariant: …")` checks, so the raw source content between
    /// the quotes is stored unprocessed.
    Str(String),
    /// A character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Punctuation / operator, longest-match (`::`, `+=`, `..=`, `->`).
    Punct(&'static str),
}

impl Tok {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, Tok::Punct(q) if *q == p)
    }

    /// Whether this token is the given identifier/keyword.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(self, Tok::Ident(s) if s == name)
    }

    /// Whether this numeric literal is a plain integer (decimal, hex, octal
    /// or binary — possibly suffixed), as opposed to a float.
    pub fn is_int(&self) -> bool {
        match self {
            Tok::Num(s) => !s.contains('.') || s.starts_with("0x") || s.starts_with("0X"),
            _ => false,
        }
    }
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: Tok,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this token is the given punctuation (delegates to the kind).
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind.is_punct(p)
    }
}

/// One comment (line or block) with its 1-based starting line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the `//` / `/* */` markers, trimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// Multi-character operators, longest first so greedy matching is correct.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

/// Single-character punctuation, interned as static strings.
fn single_punct(c: char) -> Option<&'static str> {
    Some(match c {
        '(' => "(",
        ')' => ")",
        '[' => "[",
        ']' => "]",
        '{' => "{",
        '}' => "}",
        ',' => ",",
        ';' => ";",
        ':' => ":",
        '.' => ".",
        '=' => "=",
        '<' => "<",
        '>' => ">",
        '+' => "+",
        '-' => "-",
        '*' => "*",
        '/' => "/",
        '%' => "%",
        '!' => "!",
        '?' => "?",
        '&' => "&",
        '|' => "|",
        '^' => "^",
        '#' => "#",
        '@' => "@",
        '$' => "$",
        '~' => "~",
        _ => return None,
    })
}

/// Lexes `src`, returning the token stream and the comments.
///
/// The lexer is total: bytes it cannot classify are skipped, so a rule pass
/// never aborts on exotic source. Line counting is byte-exact.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let b = src.as_bytes();
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Advances over `n` bytes, counting newlines.
    macro_rules! advance {
        ($n:expr) => {{
            let n: usize = $n;
            for &c in &b[i..(i + n).min(b.len())] {
                if c == b'\n' {
                    line += 1;
                }
            }
            i = (i + n).min(b.len());
        }};
    }

    while i < b.len() {
        let c = b[i] as char;
        // Whitespace.
        if c.is_ascii_whitespace() {
            advance!(1);
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < b.len() {
            if b[i + 1] == b'/' {
                let start_line = line;
                let end = src[i..].find('\n').map_or(b.len(), |n| i + n);
                comments.push(Comment {
                    text: src[i + 2..end].trim_start_matches(['/', '!']).trim().to_owned(),
                    line: start_line,
                });
                advance!(end - i);
                continue;
            }
            if b[i + 1] == b'*' {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1u32;
                let mut j = start;
                while j < b.len() && depth > 0 {
                    if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                comments.push(Comment {
                    text: src[start..j.saturating_sub(2).max(start)].trim().to_owned(),
                    line: start_line,
                });
                advance!(j - i);
                continue;
            }
        }
        // Raw / byte string prefixes and raw identifiers.
        if c == 'r' || c == 'b' {
            if let Some(len) = raw_or_byte_string_len(&src[i..]) {
                let tok_line = line;
                tokens.push(Token { kind: string_tok(&src[i..i + len]), line: tok_line });
                advance!(len);
                continue;
            }
            if src[i..].starts_with("r#") {
                // Raw identifier `r#type`.
                let start = i + 2;
                let end = ident_end(b, start);
                if end > start {
                    tokens.push(Token {
                        kind: Tok::Ident(src[start..end].to_owned()),
                        line,
                    });
                    advance!(end - i);
                    continue;
                }
            }
            if src[i..].starts_with("b'") {
                let len = char_literal_len(&src[i + 1..]).map_or(2, |n| n + 1);
                tokens.push(Token { kind: Tok::Char, line });
                advance!(len);
                continue;
            }
        }
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let end = ident_end(b, i);
            tokens.push(Token { kind: Tok::Ident(src[i..end].to_owned()), line });
            advance!(end - i);
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let end = number_end(b, i);
            tokens.push(Token { kind: Tok::Num(src[i..end].to_owned()), line });
            advance!(end - i);
            continue;
        }
        // Strings.
        if c == '"' {
            let tok_line = line;
            let len = cooked_string_len(&src[i..]);
            tokens.push(Token { kind: string_tok(&src[i..i + len]), line: tok_line });
            advance!(len);
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if let Some(len) = char_literal_len(&src[i..]) {
                tokens.push(Token { kind: Tok::Char, line });
                advance!(len);
            } else {
                let start = i + 1;
                let end = ident_end(b, start);
                tokens.push(Token { kind: Tok::Lifetime(src[start..end].to_owned()), line });
                advance!(end.max(start) - i);
            }
            continue;
        }
        // Operators, longest match first.
        if let Some(op) = OPERATORS.iter().find(|op| src[i..].starts_with(**op)) {
            tokens.push(Token { kind: Tok::Punct(op), line });
            advance!(op.len());
            continue;
        }
        if let Some(p) = single_punct(c) {
            tokens.push(Token { kind: Tok::Punct(p), line });
            advance!(1);
            continue;
        }
        // Unclassifiable byte (non-ASCII in code, stray symbol): skip.
        advance!(src[i..].chars().next().map_or(1, char::len_utf8));
    }
    (tokens, comments)
}

/// Extracts the content between the quotes of a lexed string literal slice.
///
/// Strips exactly one prefix (`r`/`b`/`br`/`rb`), the raw-string hashes, and
/// one quote on each side — never characters belonging to the *content*, so
/// `r#""hi""#` yields `"hi"` and `"x\""` yields `x\"`. (A chained
/// `trim_matches` version once over-trimmed content that starts or ends with
/// quotes or hashes.)
fn string_tok(raw: &str) -> Tok {
    let b = raw.as_bytes();
    let mut k = 0;
    while k < b.len() && k < 2 && (b[k] == b'r' || b[k] == b'b') {
        k += 1;
    }
    let s = &raw[k..];
    let hashes = s.bytes().take_while(|&c| c == b'#').count();
    let s = &s[hashes..];
    let s = s.strip_prefix('"').unwrap_or(s);
    // The closing delimiter (`"` plus the hashes) is absent when the lexer
    // hit EOF inside the literal; keep whatever content there is.
    let close = format!("\"{}", "#".repeat(hashes));
    let s = s.strip_suffix(close.as_str()).unwrap_or(s);
    Tok::Str(s.to_owned())
}

/// Byte index just past the end of an identifier starting at `start`.
fn ident_end(b: &[u8], start: usize) -> usize {
    let mut j = start;
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    j
}

/// Byte index just past the end of a numeric literal starting at `start`.
///
/// Consumes digits, underscores, radix/type-suffix letters, one `.` followed
/// by a digit (so `1..2` stays a range), and exponent signs after `e`/`E`.
fn number_end(b: &[u8], start: usize) -> usize {
    let mut j = start;
    let mut seen_dot = false;
    while j < b.len() {
        let c = b[j];
        if c.is_ascii_alphanumeric() || c == b'_' {
            j += 1;
        } else if c == b'.'
            && !seen_dot
            && j + 1 < b.len()
            && b[j + 1].is_ascii_digit()
        {
            seen_dot = true;
            j += 1;
        } else if (c == b'+' || c == b'-')
            && j > start
            && (b[j - 1] == b'e' || b[j - 1] == b'E')
        {
            j += 1;
        } else {
            break;
        }
    }
    j
}

/// Length of a cooked string literal (`"…"` with escapes) starting at a `"`.
fn cooked_string_len(s: &str) -> usize {
    let b = s.as_bytes();
    let mut j = 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    b.len()
}

/// Length of a raw or byte(-raw) string literal (`r"…"`, `r#"…"#`, `b"…"`,
/// `br##"…"##`) starting at its prefix, or `None` if `s` starts with no such
/// literal.
fn raw_or_byte_string_len(s: &str) -> Option<usize> {
    let rest = s.strip_prefix("br").or_else(|| s.strip_prefix("rb")).unwrap_or(
        s.strip_prefix('r').or_else(|| s.strip_prefix('b')).unwrap_or(s),
    );
    let prefix_len = s.len() - rest.len();
    if prefix_len == 0 {
        return None;
    }
    let hashes = rest.len() - rest.trim_start_matches('#').len();
    let after = &rest[hashes..];
    if !after.starts_with('"') {
        return None;
    }
    if hashes == 0 && s.starts_with('b') && prefix_len == 1 {
        // b"…": cooked byte string with escapes.
        return Some(prefix_len + cooked_string_len(after));
    }
    if hashes == 0 {
        // r"…": raw, no escapes, terminated by the first quote.
        let end = after[1..].find('"').map_or(after.len(), |n| n + 2);
        return Some(prefix_len + end);
    }
    let close: String = format!("\"{}", "#".repeat(hashes));
    let end = after[1..].find(&close).map_or(after.len(), |n| n + 1 + close.len());
    Some(prefix_len + hashes + end)
}

/// Length of a char/byte-char literal starting at `'`, or `None` when the
/// quote introduces a lifetime instead.
fn char_literal_len(s: &str) -> Option<usize> {
    let b = s.as_bytes();
    if b.len() < 2 {
        return None;
    }
    if b[1] == b'\\' {
        // Escaped char: the byte after the backslash is consumed blind
        // (it may itself be `'`, as in `'\''`), then scan for the closing
        // quote (multi-byte escapes like `\u{7f}` keep going).
        let mut j = 3;
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        return Some((j + 1).min(b.len()));
    }
    // `'x'` is a char; `'x` followed by anything else is a lifetime.
    let ch_len = s[1..].chars().next().map_or(1, char::len_utf8);
    if b.get(1 + ch_len) == Some(&b'\'') {
        Some(2 + ch_len)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).0.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_punct() {
        let toks = kinds("self.stats.media.retries += 1;");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("self".into()),
                Tok::Punct("."),
                Tok::Ident("stats".into()),
                Tok::Punct("."),
                Tok::Ident("media".into()),
                Tok::Punct("."),
                Tok::Ident("retries".into()),
                Tok::Punct("+="),
                Tok::Num("1".into()),
                Tok::Punct(";"),
            ]
        );
    }

    #[test]
    fn line_numbers_are_exact() {
        let (toks, comments) = lex("fn a() {\n    // note\n    b()\n}\n");
        let b_tok = toks.iter().find(|t| t.kind.is_ident("b")).expect("b lexed");
        assert_eq!(b_tok.line, 3);
        assert_eq!(comments[0].line, 2);
        assert_eq!(comments[0].text, "note");
    }

    #[test]
    fn strings_hide_braces_and_quotes() {
        let toks = kinds(r#"let s = "a { b \" } c"; x"#);
        assert!(toks.contains(&Tok::Str("a { b \\\" } c".into())));
        assert!(toks.contains(&Tok::Ident("x".into())));
        assert!(!toks.contains(&Tok::Punct("{")));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let toks = kinds(r###"let s = r#"inner " quote"#; y"###);
        assert!(toks.contains(&Tok::Str("inner \" quote".into())));
        assert!(toks.contains(&Tok::Ident("y".into())));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'z'; let n = '\\n'; }");
        assert!(toks.contains(&Tok::Lifetime("a".into())));
        assert_eq!(toks.iter().filter(|t| **t == Tok::Char).count(), 2);
    }

    #[test]
    fn nested_block_comments() {
        let (toks, comments) = lex("/* outer /* inner */ still */ fn x() {}");
        assert_eq!(comments.len(), 1);
        assert!(toks.iter().any(|t| t.kind.is_ident("fn")));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = kinds("for i in 1..=3 { a[0]; b = 0x4F; f = 2.5; }");
        assert!(toks.contains(&Tok::Num("1".into())));
        assert!(toks.contains(&Tok::Punct("..=")));
        assert!(toks.contains(&Tok::Num("3".into())));
        assert!(toks.contains(&Tok::Num("0x4F".into())));
        assert!(toks.contains(&Tok::Num("2.5".into())));
        assert!(Tok::Num("0".into()).is_int());
        assert!(!Tok::Num("2.5".into()).is_int());
    }

    #[test]
    fn doc_comments_are_comments_not_code() {
        let (toks, comments) = lex("/// let x = y.unwrap();\nfn ok() {}");
        assert!(!toks.iter().any(|t| t.kind.is_ident("unwrap")));
        assert!(comments[0].text.contains("unwrap"));
    }

    #[test]
    fn multichar_operators_are_single_tokens() {
        let toks = kinds("a::b -> c => d == e != f += g");
        for op in ["::", "->", "=>", "==", "!=", "+="] {
            assert!(toks.iter().any(|t| t.is_punct(op)), "missing {op}");
        }
    }

    #[test]
    fn byte_strings_and_raw_idents() {
        let toks = kinds(r#"let s = b"hello"; let r#type = 1;"#);
        assert!(toks.contains(&Tok::Str("hello".into())));
        assert!(toks.contains(&Tok::Ident("type".into())));
    }

    #[test]
    fn escaped_quote_char_literal_is_one_token() {
        // `'\''` is four bytes; a short scan once stopped at the escaped
        // quote and left a stray `'` that desynced everything after it.
        let toks = kinds(r"let q = '\''; let b = b'\''; let esc = '\\'; done");
        assert_eq!(toks.iter().filter(|t| **t == Tok::Char).count(), 3);
        assert!(toks.contains(&Tok::Ident("done".into())));
        assert!(!toks.iter().any(|t| matches!(t, Tok::Lifetime(_))), "{toks:?}");
    }

    #[test]
    fn raw_string_content_keeps_its_own_quotes_and_hashes() {
        let toks = kinds(r###"let a = r#""hi""#; let b = r#"say "hi""#;"###);
        assert!(toks.contains(&Tok::Str("\"hi\"".into())), "{toks:?}");
        assert!(toks.contains(&Tok::Str("say \"hi\"".into())), "{toks:?}");
        let toks = kinds(r##"let c = r#"# leading hash"#;"##);
        assert!(toks.contains(&Tok::Str("# leading hash".into())), "{toks:?}");
    }

    #[test]
    fn cooked_string_trailing_escaped_quote_is_kept() {
        let toks = kinds(r#"let s = "x\""; y"#);
        assert!(toks.contains(&Tok::Str("x\\\"".into())), "{toks:?}");
        assert!(toks.contains(&Tok::Ident("y".into())));
    }

    #[test]
    fn raw_strings_never_leak_code_tokens() {
        // The L2/L6 phantom-diagnostic scenario: panic-looking and
        // backoff-looking text inside raw strings, right after an
        // escaped-quote char literal, must all stay inside `Str` tokens.
        let src = concat!(
            r"fn recover_sep() { let q = '\''; ",
            r###"let m = r#"x.unwrap( backoff_ns * attempt"#; }"###,
        );
        let toks = kinds(src);
        assert!(!toks.iter().any(|t| t.ident() == Some("unwrap")), "{toks:?}");
        assert!(!toks.iter().any(|t| t.ident() == Some("backoff_ns")), "{toks:?}");
        assert!(toks.contains(&Tok::Str("x.unwrap( backoff_ns * attempt".into())));
    }

    #[test]
    fn raw_ident_lexes_as_single_ident() {
        let toks = kinds("fn r#match(r#type: u64) { r#type }");
        assert_eq!(toks.iter().filter(|t| t.ident() == Some("type")).count(), 2);
        assert!(toks.iter().any(|t| t.ident() == Some("match")));
        assert!(!toks.iter().any(|t| t.ident() == Some("r")), "{toks:?}");
    }
}
