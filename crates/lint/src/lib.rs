//! `thynvm-lint` — workspace invariant linter.
//!
//! The compiler cannot see ThyNVM's domain invariants: that persisted NVM
//! mutations flow through sealed APIs, that recovery never panics, that
//! every stats counter is live and asserted, that every error variant and
//! config field is exercised. This crate machine-checks them with a
//! hand-rolled lexer (offline-safe: zero dependencies), six token-pattern
//! rules, and three call-graph ordering rules backed by an NVM-effect
//! inference pass ([`graph`], [`effects`]).
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p thynvm-lint --release
//! ```
//!
//! Flags: `--json` (machine-readable diagnostics), `--github` (workflow
//! problem-matcher annotations), `--effects` (print the per-function
//! persistence-effect dump and exit).
//!
//! Exit codes: `0` clean, `1` violations (or stale baseline entries),
//! `2` malformed `lint.baseline`.

pub mod baseline;
pub mod effects;
pub mod graph;
pub mod lexer;
pub mod rules;
pub mod source;

use std::path::{Path, PathBuf};

use rules::Diagnostic;
use source::FileIndex;

/// Directory names never descended into: build output, vendored
/// third-party code, VCS metadata, and the lint's own known-bad fixtures.
const SKIP_DIRS: &[&str] = &["target", "compat", ".git", "fixtures", "node_modules"];

/// The outcome of one lint run.
pub struct Report {
    /// Violations not covered by the baseline, sorted.
    pub violations: Vec<Diagnostic>,
    /// Stale baseline entries, as synthetic diagnostics.
    pub stale: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the run should fail CI.
    #[must_use]
    pub fn is_failure(&self) -> bool {
        !self.violations.is_empty() || !self.stale.is_empty()
    }
}

/// Collects every `.rs` file under `root` (workspace-relative, sorted),
/// skipping [`SKIP_DIRS`].
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Parses every workspace `.rs` file under `root` into a [`FileIndex`],
/// in sorted path order (the determinism anchor for the effect dump).
pub fn index_workspace(root: &Path) -> std::io::Result<Vec<FileIndex>> {
    let paths = collect_files(root)?;
    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(path)?;
        files.push(FileIndex::parse(&rel, &src));
    }
    Ok(files)
}

/// Lints the workspace rooted at `root` against the given baseline entries.
pub fn run(root: &Path, entries: &[baseline::Entry]) -> std::io::Result<Report> {
    let files = index_workspace(root)?;
    let diags = rules::check_all(&files);
    let (violations, stale) = baseline::apply(diags, entries);
    Ok(Report { violations, stale, files_scanned: files.len() })
}

/// Renders the committed `lint.effects` artifact for the workspace at
/// `root`: the transitive persistence-effect set of every production
/// function (see [`effects::render_dump`]).
pub fn effects_dump(root: &Path) -> std::io::Result<String> {
    let files = index_workspace(root)?;
    let graph = graph::CallGraph::build(&files);
    let facts = effects::analyze(&files, &graph);
    Ok(effects::render_dump(&files, &graph, &facts))
}

/// Locates the workspace root: the nearest ancestor of `start` containing
/// a `Cargo.toml` with a `[workspace]` section.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_root_walks_up_from_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root above crates/lint");
        assert!(root.join("crates").is_dir());
        assert!(root.join("Cargo.toml").is_file());
    }

    #[test]
    fn collect_skips_target_compat_and_fixtures() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root above crates/lint");
        let files = collect_files(&root).expect("workspace readable");
        assert!(!files.is_empty());
        for f in &files {
            let s = f.to_string_lossy();
            assert!(!s.contains("/target/"), "{s}");
            assert!(!s.contains("/compat/"), "{s}");
            assert!(!s.contains("/fixtures/"), "{s}");
        }
    }
}
