//! System configuration (Table 2 of the paper) and ThyNVM-specific knobs.
//!
//! All defaults reproduce the paper's evaluated configuration:
//!
//! | Component  | Paper value |
//! |------------|-------------|
//! | Processor  | 3 GHz, in-order |
//! | L1 I/D     | private 32 KB, 8-way, 64 B blocks, 4-cycle hit |
//! | L2         | private 256 KB, 8-way, 64 B blocks, 12-cycle hit |
//! | L3         | shared 2 MB/core, 16-way, 64 B blocks, 28-cycle hit |
//! | DRAM       | DDR3-1600: 40 ns row hit, 80 ns row miss |
//! | NVM        | 40 ns row hit, 128 ns clean miss, 368 ns dirty miss |
//! | BTT/PTT    | 3 ns lookup; 2048 / 4096 entries |
//! | DRAM size  | 16 MB working-data region |
//! | Epoch      | ≤ 10 ms |
//! | Thresholds | 22 stores/epoch → page writeback; ≤16 → block remapping |

use serde::{Deserialize, Serialize};

use crate::addr::{BLOCK_BYTES, PAGE_BYTES};
use crate::cycle::Cycle;

/// CPU core frequency in GHz (Table 2: 3 GHz in-order).
pub const CPU_FREQ_GHZ: u64 = 3;

/// Raw device timing parameters, in nanoseconds (Table 2).
///
/// NVM timings follow the PCM-style model of the paper's sources: a row-buffer
/// hit costs the same as DRAM, a clean row miss pays the slow NVM array read,
/// and a dirty row miss additionally pays the expensive NVM array write-back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingConfig {
    /// DRAM row-buffer hit latency (ns).
    pub dram_row_hit_ns: u64,
    /// DRAM row-buffer miss latency (ns).
    pub dram_row_miss_ns: u64,
    /// NVM row-buffer hit latency (ns).
    pub nvm_row_hit_ns: u64,
    /// NVM row-buffer miss latency when the evicted row is clean (ns).
    pub nvm_clean_miss_ns: u64,
    /// NVM row-buffer miss latency when the evicted row is dirty (ns).
    pub nvm_dirty_miss_ns: u64,
    /// BTT/PTT lookup latency in the memory controller (ns).
    pub table_lookup_ns: u64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        Self {
            dram_row_hit_ns: 40,
            dram_row_miss_ns: 80,
            nvm_row_hit_ns: 40,
            nvm_clean_miss_ns: 128,
            nvm_dirty_miss_ns: 368,
            table_lookup_ns: 3,
        }
    }
}

impl TimingConfig {
    /// DRAM row-buffer hit latency in cycles.
    pub fn dram_row_hit(&self) -> Cycle {
        Cycle::from_ns(self.dram_row_hit_ns)
    }

    /// DRAM row-buffer miss latency in cycles.
    pub fn dram_row_miss(&self) -> Cycle {
        Cycle::from_ns(self.dram_row_miss_ns)
    }

    /// NVM row-buffer hit latency in cycles.
    pub fn nvm_row_hit(&self) -> Cycle {
        Cycle::from_ns(self.nvm_row_hit_ns)
    }

    /// NVM clean row-miss latency in cycles.
    pub fn nvm_clean_miss(&self) -> Cycle {
        Cycle::from_ns(self.nvm_clean_miss_ns)
    }

    /// NVM dirty row-miss latency in cycles.
    pub fn nvm_dirty_miss(&self) -> Cycle {
        Cycle::from_ns(self.nvm_dirty_miss_ns)
    }

    /// Address-translation-table lookup latency in cycles.
    pub fn table_lookup(&self) -> Cycle {
        Cycle::from_ns(self.table_lookup_ns)
    }
}

/// Geometry of one memory device: channels, banks, and row size.
///
/// The paper models DDR3-interfaced DRAM and NVM; we expose enough geometry
/// for bank-level parallelism and row-buffer locality to matter, which is
/// what the dual-scheme design exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceGeometry {
    /// Independent channels.
    pub channels: u32,
    /// Banks per channel.
    pub banks_per_channel: u32,
    /// Bytes per row (row-buffer size).
    pub row_bytes: u64,
}

impl Default for DeviceGeometry {
    fn default() -> Self {
        Self {
            channels: 1,
            banks_per_channel: 8,
            row_bytes: 8 * 1024,
        }
    }
}

impl DeviceGeometry {
    /// Total number of banks across all channels.
    pub fn total_banks(&self) -> u32 {
        self.channels * self.banks_per_channel
    }
}

/// Cache hierarchy configuration (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// L1 data cache capacity in bytes (32 KB).
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_ways: u32,
    /// L1 hit latency in cycles.
    pub l1_hit_cycles: u64,
    /// L2 capacity in bytes (256 KB).
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_ways: u32,
    /// L2 hit latency in cycles.
    pub l2_hit_cycles: u64,
    /// L3 capacity in bytes (2 MB per core).
    pub l3_bytes: u64,
    /// L3 associativity.
    pub l3_ways: u32,
    /// L3 hit latency in cycles.
    pub l3_hit_cycles: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            l1_bytes: 32 * 1024,
            l1_ways: 8,
            l1_hit_cycles: 4,
            l2_bytes: 256 * 1024,
            l2_ways: 8,
            l2_hit_cycles: 12,
            l3_bytes: 2 * 1024 * 1024,
            l3_ways: 16,
            l3_hit_cycles: 28,
        }
    }
}

/// Which checkpointing scheme(s) the controller uses.
///
/// The paper's contribution is [`CkptMode::Dual`]; the uniform modes exist
/// to reproduce the §1/§2.3 tradeoff claims (Table 1): uniform page
/// granularity suffers long stalls, uniform block granularity suffers large
/// metadata overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CkptMode {
    /// Dual-scheme checkpointing (§3): block remapping + page writeback,
    /// adapted by write locality.
    #[default]
    Dual,
    /// Uniform cache-block granularity (block remapping only).
    BlockOnly,
    /// Uniform page granularity (page writeback only).
    PageOnly,
}

/// Where the Working Data Region lives.
///
/// §4.1 footnote 3: "we assume that the Working Data Region is mapped to
/// DRAM… Other implementations of ThyNVM can distribute this region between
/// DRAM and NVM or place it completely in NVM. We leave the exploration of
/// such choices to future work." — this knob performs that exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum WorkingRegion {
    /// Working data in DRAM (the paper's evaluated configuration).
    #[default]
    Dram,
    /// Working data entirely in NVM: no volatile working copies to lose,
    /// shorter checkpoints, slower execution-phase writes.
    Nvm,
}

/// ThyNVM-specific configuration: translation-table sizes, DRAM capacity,
/// epoch length and the scheme-switching thresholds of §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThyNvmConfig {
    /// Number of Block Translation Table entries (2048 in the paper).
    pub btt_entries: usize,
    /// Number of Page Translation Table entries (4096 in the paper).
    pub ptt_entries: usize,
    /// Size of the DRAM working-data region in bytes (16 MB simulated).
    pub dram_bytes: u64,
    /// Maximum epoch length (10 ms in the paper).
    pub epoch_max_ms: u64,
    /// Store-counter threshold at/above which a page switches to page
    /// writeback at the next epoch (22 in the paper).
    pub promote_threshold: u8,
    /// Store-counter threshold at/below which a page switches to block
    /// remapping at the next epoch (16 in the paper).
    pub demote_threshold: u8,
    /// Size of the checkpointed CPU state in bytes (registers + store
    /// buffers); modeled as a single flush to the backup region.
    pub cpu_state_bytes: u64,
    /// Which checkpointing scheme(s) to use.
    pub mode: CkptMode,
    /// Whether checkpointing overlaps the next epoch's execution (Figure
    /// 3b). `false` reproduces the stop-the-world model of Figure 3a.
    pub overlap: bool,
    /// Capacity of the NVM write queue (requests in flight).
    pub nvm_write_queue: usize,
    /// Capacity of the DRAM write queue (requests in flight).
    pub dram_write_queue: usize,
    /// Placement of the Working Data Region (§4.1 footnote 3).
    pub working_region: WorkingRegion,
}

impl Default for ThyNvmConfig {
    fn default() -> Self {
        Self {
            btt_entries: 2048,
            ptt_entries: 4096,
            dram_bytes: 16 * 1024 * 1024,
            epoch_max_ms: 10,
            promote_threshold: 22,
            demote_threshold: 16,
            cpu_state_bytes: 4 * 1024,
            mode: CkptMode::Dual,
            overlap: true,
            nvm_write_queue: 64,
            dram_write_queue: 64,
            working_region: WorkingRegion::Dram,
        }
    }
}

impl ThyNvmConfig {
    /// Maximum epoch length in cycles.
    pub fn epoch_max(&self) -> Cycle {
        Cycle::from_ms(self.epoch_max_ms)
    }

    /// Number of pages that fit in the DRAM working-data region.
    pub fn dram_pages(&self) -> u64 {
        self.dram_bytes / PAGE_BYTES
    }

    /// Approximate metadata storage for the BTT+PTT in bytes, using the
    /// field widths of Figure 5 (BTT entry: 42-bit tag + 11 bits of state;
    /// PTT entry: 36-bit tag + 11 bits of state), rounded up per entry.
    pub fn metadata_bytes(&self) -> u64 {
        let btt_entry_bits = 42 + 2 + 2 + 1 + 6;
        let ptt_entry_bits = 36 + 2 + 2 + 1 + 6;
        let bits = self.btt_entries as u64 * btt_entry_bits
            + self.ptt_entries as u64 * ptt_entry_bits;
        bits.div_ceil(8)
    }
}

/// NVM media-fault model and integrity-protection configuration.
///
/// All fields default to "off": a default configuration models perfect
/// media and adds zero cycles of integrity overhead, so baseline runs are
/// byte- and cycle-identical to a build without the fault subsystem.
///
/// The model is fully deterministic: every fault decision is a pure
/// function of `seed` and the sequence of device operations, so any run —
/// including a crash replay — can be reproduced exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MediaFaultConfig {
    /// Master switch for the fault model. When `false` no faults are ever
    /// injected and no wear is tracked by the model.
    pub enabled: bool,
    /// Seed for the deterministic fault schedule.
    pub seed: u64,
    /// Probability that one 64 B read returns a transiently flipped bit.
    /// Must be in `[0, 1]`.
    pub bit_flip_rate: f64,
    /// Number of writes to a device row after which one cell in the
    /// just-written range becomes permanently stuck. `0` disables the wear
    /// model.
    pub stuck_at_threshold: u64,
    /// Model torn multi-word commits: a crash during the checkpoint commit
    /// record persists only a prefix of its words.
    pub torn_writes: bool,
    /// CRC-protect persisted state (per-64 B data CRCs in the checkpoint
    /// regions, checksummed commit records and BTT/PTT metadata) and verify
    /// it on reads and at recovery. Off: corrupted reads are delivered
    /// silently.
    pub integrity: bool,
    /// Bounded retries for a read that fails its CRC before the block is
    /// declared permanently bad.
    pub max_read_retries: u32,
    /// Backoff between read retries, in nanoseconds (scaled by the attempt
    /// number).
    pub retry_backoff_ns: u64,
    /// Run the background scrubber: between epochs, remap blocks whose
    /// cells the wear model marked stuck, repairing checkpoint regions
    /// before the next epoch reads them. Requires `integrity` (CRCs are
    /// what the scrubber verifies against).
    pub scrub: bool,
    /// Number of spare blocks available for bad-block remapping. When the
    /// pool is exhausted further remap attempts degrade gracefully: the bad
    /// block keeps being served through bounded CRC retries and
    /// `MediaStats::spare_exhausted` counts the abandoned remaps.
    pub spare_blocks: u64,
}

impl Default for MediaFaultConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            seed: 0x7479_4e56_4d01,
            bit_flip_rate: 0.0,
            stuck_at_threshold: 0,
            torn_writes: false,
            integrity: false,
            max_read_retries: 3,
            retry_backoff_ns: 50,
            scrub: false,
            spare_blocks: 4096,
        }
    }
}

impl MediaFaultConfig {
    /// A fully-armed configuration: faults on, CRC integrity on, torn
    /// writes modeled, scrubber running. Fault rates are left for the
    /// caller to choose (they default to zero).
    pub fn hardened() -> Self {
        Self {
            enabled: true,
            torn_writes: true,
            integrity: true,
            scrub: true,
            ..Self::default()
        }
    }
}

/// DRAM fault-domain configuration: a seedable SEC-DED ECC model on the
/// DRAM working-data region.
///
/// All fields default to "off": a default configuration models perfect
/// DRAM and the controller's data path is cycle- and byte-identical to a
/// build without the subsystem.
///
/// With the model enabled, single-bit transients are corrected by the
/// SEC-DED code and counted; multi-bit errors are detected but
/// uncorrectable and *poison* the affected 64 B block. Poison is volatile
/// (DRAM loses it with power) but must never propagate to NVM: the
/// controller quarantines poisoned dirty pages at checkpoint time and
/// re-fetches poisoned clean blocks from their checkpoint copies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramFaultConfig {
    /// Master switch for the DRAM ECC model. When `false` no DRAM faults
    /// are ever injected and the controller adds zero overhead.
    pub enabled: bool,
    /// Seed for the deterministic fault schedule. Must differ from
    /// [`MediaFaultConfig::seed`] when both models are enabled, so the two
    /// fault streams stay statistically independent.
    pub seed: u64,
    /// Probability that one DRAM read suffers a single-bit transient the
    /// SEC-DED code corrects. Must be in `[0, 1]`.
    pub flip_rate: f64,
    /// Probability that one DRAM read suffers a multi-bit error the code
    /// can only detect: one 64 B block of the read span becomes poisoned.
    /// Must be in `[0, 1]`.
    pub poison_rate: f64,
    /// Bounded DRAM re-read attempts on a poisoned block before the
    /// controller gives up on the DRAM copy and re-fetches the block from
    /// its NVM checkpoint copy. At least one attempt is required when the
    /// model is enabled.
    pub max_refetch_retries: u32,
    /// Backoff between DRAM re-read attempts, in nanoseconds (scaled by
    /// the attempt number).
    pub refetch_backoff_ns: u64,
}

impl Default for DramFaultConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            seed: 0x4452_414d_4543, // "DRAMEC"
            flip_rate: 0.0,
            poison_rate: 0.0,
            max_refetch_retries: 2,
            refetch_backoff_ns: 30,
        }
    }
}

impl DramFaultConfig {
    /// A fully-armed configuration: the ECC model on with the default
    /// retry budget. Fault rates are left for the caller to choose (they
    /// default to zero).
    pub fn hardened() -> Self {
        Self { enabled: true, ..Self::default() }
    }
}

/// Secure persistent memory mode: counter-mode encryption of NVM data plus
/// a MAC/integrity tree over the checkpoint images and metadata.
///
/// All fields default to "off": a default configuration adds zero cycles
/// of crypto overhead and never injects tampering, so baseline runs are
/// byte- and cycle-identical to a build without the subsystem.
///
/// The model follows Zuo et al. (arXiv:1901.00620): per-block encryption
/// counters and integrity-tree nodes are themselves crash-consistency
/// state. Counters are persisted at epoch boundaries under the same
/// commit-record discipline as the checkpoint itself; a crash mid-epoch
/// loses only the counters of blocks written since the last persist, and
/// recovery *replays* those bounded counters — it never guesses. A MAC
/// mismatch on `C_last` at recovery is classified (tamper vs. torn vs.
/// media) and degrades to `C_penult` exactly as CRC failures do; a
/// mismatch on both images surfaces
/// [`crate::Error::IntegrityUnrecoverable`] rather than ever replaying
/// unauthenticated data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SecurityConfig {
    /// Master switch for the security model. When `false` no crypto costs
    /// are charged, no security metadata is persisted, and recovery skips
    /// all verification steps.
    pub enabled: bool,
    /// Seed for the deterministic tamper-injection schedule. Must differ
    /// from [`MediaFaultConfig::seed`] and [`DramFaultConfig::seed`] when
    /// the respective models are enabled, so the streams stay independent.
    pub seed: u64,
    /// Modeled counter-mode encryption/decryption latency per 64 B block,
    /// in nanoseconds (AES pipeline + counter fetch on the write path,
    /// decrypt on the read path).
    pub crypto_ns_per_block: u64,
    /// Modeled MAC computation/verification latency per 64 B block, in
    /// nanoseconds (integrity-tree leaf and node hashing).
    pub mac_ns_per_block: u64,
    /// Arity of the integrity tree over the counter table: each node
    /// authenticates this many children. Must be at least 2 when the model
    /// is enabled.
    pub tree_arity: u32,
    /// Probability that a crash is accompanied by an adversarial tamper of
    /// a checkpoint region, drawn deterministically from `seed`. Must be
    /// in `[0, 1]`. Explicit tamper injection via the controller hooks is
    /// independent of this rate.
    pub tamper_rate: f64,
}

impl Default for SecurityConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            seed: 0x5345_4355_5245, // "SECURE"
            crypto_ns_per_block: 14,
            mac_ns_per_block: 8,
            tree_arity: 8,
            tamper_rate: 0.0,
        }
    }
}

impl SecurityConfig {
    /// A fully-armed configuration: encryption and integrity verification
    /// on with the default modeled latencies. The tamper rate is left for
    /// the caller to choose (it defaults to zero).
    pub fn hardened() -> Self {
        Self { enabled: true, ..Self::default() }
    }
}

/// Graceful-degradation health-ladder configuration.
///
/// All fields default to "off": a default configuration never evaluates
/// signals, never persists a health record, and never changes controller
/// posture, so baseline runs are byte- and cycle-identical to a build
/// without the subsystem.
///
/// With the monitor enabled, observable signals already collected in
/// `MemStats` (spare-pool occupancy, windowed CRC-retry and ECC-refetch
/// rates, scrub backlog, WAL redos, tamper detections, outstanding DRAM
/// poison) are evaluated at every epoch boundary and drive the ladder
/// `Healthy → Wounded → ReadOnly → FailSafe`. Demotion is immediate and
/// may skip rungs; promotion climbs one rung after `promote_clean_epochs`
/// consecutive signal-free epochs (hysteresis), and `FailSafe` never
/// promotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthConfig {
    /// Master switch for the health monitor. When `false` no signals are
    /// evaluated, no health record is persisted, and the controller's
    /// timing and image are bit-identical to a build without the ladder.
    pub enabled: bool,
    /// Length of the sliding window, in epochs, over which retry/refetch
    /// rates are summed. Must be at least 1 when the monitor is enabled.
    pub window_epochs: u32,
    /// Spare-pool occupancy percentage at or above which the ladder
    /// demotes to at least `Wounded`. Must be in `[0, 100]`.
    pub wounded_spare_pct: u8,
    /// Media CRC-retry attempts summed over the window at or above which
    /// the ladder demotes to at least `Wounded`. Zero would pin the ladder
    /// at `Wounded` permanently and is rejected when the monitor is on.
    pub wounded_retry_rate: u64,
    /// DRAM ECC-refetch attempts summed over the window at or above which
    /// the ladder demotes to at least `Wounded`. Zero is rejected when the
    /// monitor is on.
    pub wounded_refetch_rate: u64,
    /// Cumulative WAL redos at or above which the ladder demotes to at
    /// least `ReadOnly` (recovery-side write-ahead records keep tearing —
    /// durability of new data is in question). Zero is rejected when the
    /// monitor is on.
    pub readonly_wal_redos: u64,
    /// Stuck-cell scrub backlog at or above which — once the spare pool is
    /// exhausted and the scrubber can no longer heal — the ladder demotes
    /// to at least `ReadOnly`. Zero is rejected when the monitor is on.
    pub readonly_scrub_backlog: u64,
    /// Outstanding poisoned DRAM blocks at or above which the ladder
    /// demotes to at least `ReadOnly`. Zero is rejected when the monitor
    /// is on.
    pub readonly_poison_blocks: u64,
    /// Consecutive signal-free epochs required before the ladder promotes
    /// one rung (hysteresis). Must be at least 1 when the monitor is
    /// enabled.
    pub promote_clean_epochs: u32,
    /// Factor by which the `Wounded` posture shortens the epoch timer:
    /// checkpoints become due after `epoch_max / emergency_divisor`.
    /// Must be in `[1, 1024]` when the monitor is enabled.
    pub emergency_divisor: u32,
    /// Cycle budget (in nanoseconds of simulated time) one `Wounded`-mode
    /// scrub pass may spend before deferring remaining stuck cells to a
    /// later epoch, so scrubbing cannot starve foreground traffic. Must be
    /// nonzero and at most one second when the monitor is enabled.
    pub scrub_budget_ns: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            window_epochs: 8,
            wounded_spare_pct: 75,
            wounded_retry_rate: 64,
            wounded_refetch_rate: 64,
            readonly_wal_redos: 4,
            readonly_scrub_backlog: 64,
            readonly_poison_blocks: 16,
            promote_clean_epochs: 4,
            emergency_divisor: 4,
            scrub_budget_ns: 100_000,
        }
    }
}

impl HealthConfig {
    /// A fully-armed configuration: the monitor on with the default
    /// thresholds and hysteresis.
    pub fn hardened() -> Self {
        Self { enabled: true, ..Self::default() }
    }
}

/// Volatile persist-buffer (WPQ) fault-domain configuration.
///
/// All fields default to "off": a default configuration keeps every NVM
/// write content-durable the instant it is issued, so baseline runs are
/// byte- and cycle-identical to a build without the subsystem.
///
/// With the buffer enabled, NVM writes enter a bounded volatile write
/// pending queue holding `(addr, data, retire_cycle)` entries and only
/// become durable when they drain — out of order across banks, in order
/// within a 64 B line. The controller must fence (force-drain) the buffer
/// at every §4.4 ordering point; a crash drops a seeded, retire-consistent
/// suffix of each bank's pending entries, so recovery faces genuinely
/// torn, reordered persist state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PersistBufferConfig {
    /// Master switch for the persist-buffer model. When `false` writes are
    /// durable at issue and the simulated image and cycle counts are
    /// bit-identical to a build without the subsystem.
    pub enabled: bool,
    /// Seed for the deterministic crash-time partial-flush schedule. Must
    /// differ from [`MediaFaultConfig::seed`], [`DramFaultConfig::seed`]
    /// and [`SecurityConfig::seed`] when the respective models are
    /// enabled, so the fault streams stay independent.
    pub seed: u64,
    /// Maximum buffered entries across all banks before further enqueues
    /// exert back-pressure (the issuer stalls until the earliest pending
    /// entry retires). Must be nonzero when the model is enabled.
    pub capacity: u32,
    /// Expected fraction of each bank's in-flight (issued but not yet
    /// retired) entries salvaged at a crash, beyond the retire-complete
    /// prefix that is always durable. Must be in `[0, 1]`: `0.0` drops
    /// everything still in flight, `1.0` models a fully residual-powered
    /// buffer that always finishes its drain.
    pub salvage_rate: f64,
}

impl Default for PersistBufferConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            seed: 0x5750_5144_524e, // "WPQDRN"
            capacity: 64,
            salvage_rate: 0.5,
        }
    }
}

impl PersistBufferConfig {
    /// A fully-armed configuration: the buffer on with the default
    /// capacity and salvage rate. Deliberately *not* part of
    /// [`SystemConfig::hardened`] — fence stalls change cycle counts, and
    /// `hardened()` is used in timing-compared configurations.
    pub fn armed() -> Self {
        Self { enabled: true, ..Self::default() }
    }
}

/// Complete system configuration: one struct to construct any evaluated
/// memory system with the paper's parameters.
///
/// # Example
///
/// ```
/// use thynvm_types::SystemConfig;
/// let cfg = SystemConfig::default();
/// assert_eq!(cfg.thynvm.btt_entries, 2048);
/// assert_eq!(cfg.timing.nvm_dirty_miss_ns, 368);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Device timing parameters.
    pub timing: TimingConfig,
    /// DRAM geometry.
    pub dram_geometry: DeviceGeometry,
    /// NVM geometry.
    pub nvm_geometry: DeviceGeometry,
    /// Cache hierarchy parameters.
    pub cache: CacheConfig,
    /// ThyNVM controller parameters.
    pub thynvm: ThyNvmConfig,
    /// NVM media-fault model and integrity protection (default: perfect
    /// media, no integrity overhead).
    pub media: MediaFaultConfig,
    /// DRAM ECC fault model (default: perfect DRAM, zero overhead).
    pub dram_fault: DramFaultConfig,
    /// Secure persistent memory mode: counter-mode encryption + integrity
    /// tree (default: off, zero overhead).
    pub security: SecurityConfig,
    /// Graceful-degradation health ladder (default: off, zero overhead).
    pub health: HealthConfig,
    /// Volatile persist-buffer fault domain (default: off, writes durable
    /// at issue, zero overhead).
    pub wpq: PersistBufferConfig,
}

impl Eq for SystemConfig {}

impl SystemConfig {
    /// The exact configuration of Table 2.
    pub fn paper() -> Self {
        Self::default()
    }

    /// The paper configuration with every robustness domain armed: NVM
    /// media integrity (CRC + retry/remap/scrub), the DRAM SEC-DED ECC
    /// model, the secure persistent memory mode, and the graceful-
    /// degradation health ladder. Fault and tamper rates are left at zero
    /// for the caller to choose.
    pub fn hardened() -> Self {
        Self {
            media: MediaFaultConfig::hardened(),
            dram_fault: DramFaultConfig::hardened(),
            security: SecurityConfig::hardened(),
            health: HealthConfig::hardened(),
            ..Self::default()
        }
    }

    /// Validates internal consistency of the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidConfig`] when a field combination is
    /// meaningless: zero-sized structures, a demote threshold above the
    /// promote threshold (pages would oscillate between schemes every
    /// epoch), or a PTT larger than the DRAM that backs it.
    pub fn validate(&self) -> crate::Result<()> {
        let t = &self.thynvm;
        let fail = |reason: &str| {
            Err(crate::Error::InvalidConfig { reason: reason.to_owned() })
        };
        if t.btt_entries == 0 {
            return fail("BTT must have at least one entry");
        }
        if t.ptt_entries == 0 {
            return fail("PTT must have at least one entry");
        }
        if t.dram_bytes < PAGE_BYTES {
            return fail("DRAM must hold at least one page");
        }
        if t.demote_threshold > t.promote_threshold {
            return fail("demote threshold above promote threshold causes scheme oscillation");
        }
        if t.ptt_entries as u64 > t.dram_pages() {
            return fail("PTT entries exceed DRAM page capacity");
        }
        if t.ptt_entries as u64 > u64::from(u32::MAX) {
            return fail("PTT capacity exceeds DRAM slot addressing (u32 slots)");
        }
        if t.epoch_max_ms == 0 {
            return fail("epoch length must be nonzero");
        }
        if t.nvm_write_queue == 0 || t.dram_write_queue == 0 {
            return fail("write queues must have nonzero capacity");
        }
        if t.cpu_state_bytes == 0 {
            return fail("checkpointed CPU state must occupy at least one byte");
        }
        if !(0.0..=1.0).contains(&self.media.bit_flip_rate) {
            return fail("media bit-flip rate must be a probability in [0, 1]");
        }
        if self.media.scrub && !self.media.integrity {
            return fail("media scrubber requires integrity checking (CRCs detect the rot)");
        }
        if self.media.integrity && self.media.max_read_retries == 0 {
            return fail("integrity checking needs at least one read retry to heal transients");
        }
        if self.media.retry_backoff_ns > 1_000_000_000 {
            return fail("read-retry backoff above one second dwarfs any device latency");
        }
        if self.media.spare_blocks > (1 << 32) {
            return fail("spare pool exceeds the spare region's addressable blocks");
        }
        let d = &self.dram_fault;
        if !(0.0..=1.0).contains(&d.flip_rate) {
            return fail("DRAM single-bit flip rate must be a probability in [0, 1]");
        }
        if !(0.0..=1.0).contains(&d.poison_rate) {
            return fail("DRAM poison rate must be a probability in [0, 1]");
        }
        if d.enabled && d.max_refetch_retries == 0 {
            return fail("DRAM ECC model needs at least one refetch retry to recover poison");
        }
        if d.refetch_backoff_ns > 1_000_000_000 {
            return fail("DRAM refetch backoff above one second dwarfs any device latency");
        }
        if d.enabled && self.media.enabled && d.seed == self.media.seed {
            return fail(
                "DRAM fault seed must differ from the NVM media seed so the fault streams stay independent",
            );
        }
        let s = &self.security;
        if !(0.0..=1.0).contains(&s.tamper_rate) {
            return fail("security tamper rate must be a probability in [0, 1]");
        }
        if s.enabled && s.tree_arity < 2 {
            return fail("integrity tree arity below 2 cannot converge to a root");
        }
        if s.crypto_ns_per_block > 1_000_000_000 || s.mac_ns_per_block > 1_000_000_000 {
            return fail("per-block crypto/MAC latency above one second dwarfs any device latency");
        }
        if s.enabled && self.media.enabled && s.seed == self.media.seed {
            return fail(
                "security seed must differ from the NVM media seed so the fault streams stay independent",
            );
        }
        if s.enabled && d.enabled && s.seed == d.seed {
            return fail(
                "security seed must differ from the DRAM fault seed so the fault streams stay independent",
            );
        }
        let w = &self.wpq;
        if !(0.0..=1.0).contains(&w.salvage_rate) {
            return fail("WPQ salvage rate must be a probability in [0, 1]");
        }
        if w.enabled && w.capacity == 0 {
            return fail("persist buffer needs nonzero capacity to hold any pending write");
        }
        if w.enabled && self.media.enabled && w.seed == self.media.seed {
            return fail(
                "WPQ seed must differ from the NVM media seed so the fault streams stay independent",
            );
        }
        if w.enabled && d.enabled && w.seed == d.seed {
            return fail(
                "WPQ seed must differ from the DRAM fault seed so the fault streams stay independent",
            );
        }
        if w.enabled && s.enabled && w.seed == s.seed {
            return fail(
                "WPQ seed must differ from the security seed so the fault streams stay independent",
            );
        }
        let h = &self.health;
        if h.enabled {
            if h.window_epochs == 0 {
                return fail("health sliding window must span at least one epoch");
            }
            if h.wounded_spare_pct > 100 {
                return fail("health spare-occupancy threshold is a percentage in [0, 100]");
            }
            if h.wounded_retry_rate == 0 {
                return fail("a zero retry-rate threshold would pin the ladder at Wounded");
            }
            if h.wounded_refetch_rate == 0 {
                return fail("a zero refetch-rate threshold would pin the ladder at Wounded");
            }
            if h.readonly_wal_redos == 0 {
                return fail("a zero WAL-redo threshold would pin the ladder at ReadOnly");
            }
            if h.readonly_scrub_backlog == 0 {
                return fail("a zero scrub-backlog threshold would pin the ladder at ReadOnly");
            }
            if h.readonly_poison_blocks == 0 {
                return fail("a zero outstanding-poison threshold would pin the ladder at ReadOnly");
            }
            if h.promote_clean_epochs == 0 {
                return fail("promotion hysteresis needs at least one clean epoch");
            }
            if h.emergency_divisor == 0 || h.emergency_divisor > 1024 {
                return fail("emergency epoch divisor must be in [1, 1024]");
            }
            if h.scrub_budget_ns == 0 || h.scrub_budget_ns > 1_000_000_000 {
                return fail("Wounded scrub budget must be nonzero and at most one second");
            }
        }
        Ok(())
    }

    /// A scaled-down configuration for fast unit tests: small DRAM, small
    /// tables, and a short epoch so tests cross many epoch boundaries.
    pub fn small_test() -> Self {
        let mut cfg = Self::default();
        cfg.thynvm.dram_bytes = 64 * PAGE_BYTES;
        cfg.thynvm.btt_entries = 64;
        cfg.thynvm.ptt_entries = 64;
        cfg.thynvm.epoch_max_ms = 1;
        cfg
    }
}

/// Sanity guard: block size divides page size (used throughout the address
/// math).
const _: () = assert!(PAGE_BYTES.is_multiple_of(BLOCK_BYTES));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_2() {
        let t = TimingConfig::default();
        assert_eq!(t.dram_row_hit_ns, 40);
        assert_eq!(t.dram_row_miss_ns, 80);
        assert_eq!(t.nvm_row_hit_ns, 40);
        assert_eq!(t.nvm_clean_miss_ns, 128);
        assert_eq!(t.nvm_dirty_miss_ns, 368);
        assert_eq!(t.table_lookup_ns, 3);

        let c = CacheConfig::default();
        assert_eq!(c.l1_bytes, 32 * 1024);
        assert_eq!(c.l1_ways, 8);
        assert_eq!(c.l1_hit_cycles, 4);
        assert_eq!(c.l2_bytes, 256 * 1024);
        assert_eq!(c.l2_hit_cycles, 12);
        assert_eq!(c.l3_bytes, 2 * 1024 * 1024);
        assert_eq!(c.l3_ways, 16);
        assert_eq!(c.l3_hit_cycles, 28);

        let n = ThyNvmConfig::default();
        assert_eq!(n.btt_entries, 2048);
        assert_eq!(n.ptt_entries, 4096);
        assert_eq!(n.dram_bytes, 16 * 1024 * 1024);
        assert_eq!(n.epoch_max_ms, 10);
        assert_eq!(n.promote_threshold, 22);
        assert_eq!(n.demote_threshold, 16);
    }

    #[test]
    fn latencies_in_cycles() {
        let t = TimingConfig::default();
        assert_eq!(t.dram_row_hit().raw(), 120);
        assert_eq!(t.dram_row_miss().raw(), 240);
        assert_eq!(t.nvm_row_hit().raw(), 120);
        assert_eq!(t.nvm_clean_miss().raw(), 384);
        assert_eq!(t.nvm_dirty_miss().raw(), 1104);
        assert_eq!(t.table_lookup().raw(), 9);
    }

    #[test]
    fn metadata_size_near_paper_37kb() {
        // §4.2: "total size of the BTT and PTT we use in our evaluations is
        // approximately 37KB".
        let kb = ThyNvmConfig::default().metadata_bytes() as f64 / 1024.0;
        assert!((35.0..40.0).contains(&kb), "metadata {kb:.1} KB not ≈37 KB");
    }

    #[test]
    fn epoch_length_cycles() {
        assert_eq!(ThyNvmConfig::default().epoch_max().raw(), 30_000_000);
    }

    #[test]
    fn dram_page_count() {
        assert_eq!(ThyNvmConfig::default().dram_pages(), 4096);
    }

    #[test]
    fn geometry_totals() {
        let g = DeviceGeometry::default();
        assert_eq!(g.total_banks(), 8);
        let g2 = DeviceGeometry { channels: 2, banks_per_channel: 4, row_bytes: 4096 };
        assert_eq!(g2.total_banks(), 8);
    }

    #[test]
    fn small_test_config_is_smaller() {
        let s = SystemConfig::small_test();
        let p = SystemConfig::paper();
        assert!(s.thynvm.dram_bytes < p.thynvm.dram_bytes);
        assert!(s.thynvm.btt_entries < p.thynvm.btt_entries);
        assert!(s.thynvm.epoch_max() < p.thynvm.epoch_max());
        // Timing is unchanged.
        assert_eq!(s.timing, p.timing);
    }

    #[test]
    fn paper_and_test_configs_validate() {
        SystemConfig::paper().validate().expect("paper config valid");
        SystemConfig::small_test().validate().expect("test config valid");
    }

    #[test]
    fn validation_rejects_bad_combinations() {
        let mut cfg = SystemConfig::paper();
        cfg.thynvm.btt_entries = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::paper();
        cfg.thynvm.demote_threshold = 40; // above promote (22)
        assert!(cfg.validate().unwrap_err().to_string().contains("oscillation"));

        let mut cfg = SystemConfig::paper();
        cfg.thynvm.dram_bytes = 4096;
        // 4096-entry PTT cannot fit in a 1-page DRAM.
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::paper();
        cfg.thynvm.epoch_max_ms = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::paper();
        cfg.thynvm.nvm_write_queue = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::paper();
        cfg.media.bit_flip_rate = 1.5;
        assert!(cfg.validate().unwrap_err().to_string().contains("probability"));

        let mut cfg = SystemConfig::paper();
        cfg.media.scrub = true; // without integrity
        assert!(cfg.validate().unwrap_err().to_string().contains("scrubber"));

        let mut cfg = SystemConfig::paper();
        cfg.thynvm.cpu_state_bytes = 0;
        assert!(cfg.validate().unwrap_err().to_string().contains("CPU state"));

        let mut cfg = SystemConfig::paper();
        cfg.media.integrity = true;
        cfg.media.max_read_retries = 0;
        assert!(cfg.validate().unwrap_err().to_string().contains("retry"));

        let mut cfg = SystemConfig::paper();
        cfg.media.retry_backoff_ns = 2_000_000_000;
        assert!(cfg.validate().unwrap_err().to_string().contains("backoff"));

        let mut cfg = SystemConfig::paper();
        cfg.media.spare_blocks = (1 << 32) + 1;
        assert!(cfg.validate().unwrap_err().to_string().contains("spare"));
    }

    /// An absurd PTT capacity fails at config time with a clear reason
    /// instead of panicking deep inside `Ptt` construction.
    #[test]
    fn validation_rejects_ptt_beyond_slot_addressing() {
        let mut cfg = SystemConfig::paper();
        // Enough DRAM that the page-capacity check passes; the slot-width
        // check must still reject the table.
        cfg.thynvm.dram_bytes = u64::MAX / 2;
        cfg.thynvm.ptt_entries = u32::MAX as usize + 1;
        let err = cfg.validate().unwrap_err().to_string();
        assert!(err.contains("slot addressing"), "err={err}");
    }

    #[test]
    fn spare_pool_defaults_and_hardened_inherit() {
        assert_eq!(MediaFaultConfig::default().spare_blocks, 4096);
        assert_eq!(MediaFaultConfig::hardened().spare_blocks, 4096);
    }

    #[test]
    fn media_faults_default_off() {
        let m = SystemConfig::paper().media;
        assert!(!m.enabled);
        assert!(!m.integrity);
        assert!(!m.torn_writes);
        assert!(!m.scrub);
        assert_eq!(m.bit_flip_rate, 0.0);
        assert_eq!(m.stuck_at_threshold, 0);
    }

    #[test]
    fn hardened_media_preset_validates() {
        let mut cfg = SystemConfig::small_test();
        cfg.media = MediaFaultConfig::hardened();
        cfg.media.bit_flip_rate = 1e-4;
        cfg.media.stuck_at_threshold = 1000;
        cfg.validate().expect("hardened media config valid");
        assert!(cfg.media.enabled && cfg.media.integrity && cfg.media.scrub);
    }

    #[test]
    fn dram_faults_default_off() {
        let d = SystemConfig::paper().dram_fault;
        assert!(!d.enabled);
        assert_eq!(d.flip_rate, 0.0);
        assert_eq!(d.poison_rate, 0.0);
        assert_eq!(d.max_refetch_retries, 2);
        assert_eq!(d.refetch_backoff_ns, 30);
        assert_ne!(d.seed, MediaFaultConfig::default().seed);
    }

    #[test]
    fn hardened_dram_preset_validates() {
        let mut cfg = SystemConfig::small_test();
        cfg.dram_fault = DramFaultConfig::hardened();
        cfg.dram_fault.flip_rate = 1e-4;
        cfg.dram_fault.poison_rate = 1e-5;
        cfg.validate().expect("hardened DRAM config valid");
        assert!(cfg.dram_fault.enabled);
    }

    #[test]
    fn validation_rejects_bad_dram_fault_combinations() {
        let mut cfg = SystemConfig::paper();
        cfg.dram_fault.flip_rate = 1.5;
        assert!(cfg.validate().unwrap_err().to_string().contains("probability"));

        let mut cfg = SystemConfig::paper();
        cfg.dram_fault.poison_rate = -0.1;
        assert!(cfg.validate().unwrap_err().to_string().contains("probability"));

        let mut cfg = SystemConfig::paper();
        cfg.dram_fault.enabled = true;
        cfg.dram_fault.max_refetch_retries = 0;
        assert!(cfg.validate().unwrap_err().to_string().contains("refetch"));

        let mut cfg = SystemConfig::paper();
        cfg.dram_fault.refetch_backoff_ns = 2_000_000_000;
        assert!(cfg.validate().unwrap_err().to_string().contains("backoff"));

        let mut cfg = SystemConfig::paper();
        cfg.media = MediaFaultConfig::hardened();
        cfg.dram_fault = DramFaultConfig::hardened();
        cfg.dram_fault.seed = cfg.media.seed;
        assert!(cfg.validate().unwrap_err().to_string().contains("seed"));
    }

    #[test]
    fn security_defaults_off_with_distinct_seed() {
        let s = SystemConfig::paper().security;
        assert!(!s.enabled);
        assert_eq!(s.tamper_rate, 0.0);
        assert_eq!(s.crypto_ns_per_block, 14);
        assert_eq!(s.mac_ns_per_block, 8);
        assert_eq!(s.tree_arity, 8);
        assert_ne!(s.seed, MediaFaultConfig::default().seed);
        assert_ne!(s.seed, DramFaultConfig::default().seed);
    }

    #[test]
    fn hardened_composes_all_domains_and_validates() {
        let cfg = SystemConfig::hardened();
        assert!(cfg.media.enabled && cfg.media.integrity && cfg.media.scrub);
        assert!(cfg.dram_fault.enabled);
        assert!(cfg.security.enabled);
        assert!(cfg.health.enabled);
        cfg.validate().expect("hardened config valid");
        // Rates default to zero: hardened arms machinery, not faults.
        assert_eq!(cfg.media.bit_flip_rate, 0.0);
        assert_eq!(cfg.dram_fault.poison_rate, 0.0);
        assert_eq!(cfg.security.tamper_rate, 0.0);
    }

    #[test]
    fn health_defaults_off_with_sane_thresholds() {
        let h = SystemConfig::paper().health;
        assert!(!h.enabled);
        assert_eq!(h.window_epochs, 8);
        assert_eq!(h.wounded_spare_pct, 75);
        assert_eq!(h.promote_clean_epochs, 4);
        assert_eq!(h.emergency_divisor, 4);
        assert_eq!(HealthConfig::hardened(), HealthConfig { enabled: true, ..HealthConfig::default() });
    }

    #[test]
    fn validation_rejects_bad_health_combinations() {
        let mut cfg = SystemConfig::paper();
        cfg.health = HealthConfig::hardened();
        cfg.health.window_epochs = 0;
        assert!(cfg.validate().unwrap_err().to_string().contains("window"));

        let mut cfg = SystemConfig::paper();
        cfg.health = HealthConfig::hardened();
        cfg.health.wounded_spare_pct = 101;
        assert!(cfg.validate().unwrap_err().to_string().contains("percentage"));

        let mut cfg = SystemConfig::paper();
        cfg.health = HealthConfig::hardened();
        cfg.health.wounded_retry_rate = 0;
        assert!(cfg.validate().unwrap_err().to_string().contains("retry-rate"));

        let mut cfg = SystemConfig::paper();
        cfg.health = HealthConfig::hardened();
        cfg.health.wounded_refetch_rate = 0;
        assert!(cfg.validate().unwrap_err().to_string().contains("refetch-rate"));

        let mut cfg = SystemConfig::paper();
        cfg.health = HealthConfig::hardened();
        cfg.health.readonly_wal_redos = 0;
        assert!(cfg.validate().unwrap_err().to_string().contains("WAL-redo"));

        let mut cfg = SystemConfig::paper();
        cfg.health = HealthConfig::hardened();
        cfg.health.readonly_scrub_backlog = 0;
        assert!(cfg.validate().unwrap_err().to_string().contains("scrub-backlog"));

        let mut cfg = SystemConfig::paper();
        cfg.health = HealthConfig::hardened();
        cfg.health.readonly_poison_blocks = 0;
        assert!(cfg.validate().unwrap_err().to_string().contains("poison"));

        let mut cfg = SystemConfig::paper();
        cfg.health = HealthConfig::hardened();
        cfg.health.promote_clean_epochs = 0;
        assert!(cfg.validate().unwrap_err().to_string().contains("hysteresis"));

        let mut cfg = SystemConfig::paper();
        cfg.health = HealthConfig::hardened();
        cfg.health.emergency_divisor = 0;
        assert!(cfg.validate().unwrap_err().to_string().contains("divisor"));

        let mut cfg = SystemConfig::paper();
        cfg.health = HealthConfig::hardened();
        cfg.health.emergency_divisor = 2048;
        assert!(cfg.validate().unwrap_err().to_string().contains("divisor"));

        let mut cfg = SystemConfig::paper();
        cfg.health = HealthConfig::hardened();
        cfg.health.scrub_budget_ns = 0;
        assert!(cfg.validate().unwrap_err().to_string().contains("scrub budget"));

        let mut cfg = SystemConfig::paper();
        cfg.health = HealthConfig::hardened();
        cfg.health.scrub_budget_ns = 2_000_000_000;
        assert!(cfg.validate().unwrap_err().to_string().contains("scrub budget"));

        // Disabled health skips threshold validation entirely.
        let mut cfg = SystemConfig::paper();
        cfg.health.window_epochs = 0;
        cfg.validate().expect("disabled health is not validated");
    }

    #[test]
    fn validation_rejects_bad_security_combinations() {
        let mut cfg = SystemConfig::paper();
        cfg.security.tamper_rate = 1.5;
        assert!(cfg.validate().unwrap_err().to_string().contains("probability"));

        let mut cfg = SystemConfig::paper();
        cfg.security = SecurityConfig::hardened();
        cfg.security.tree_arity = 1;
        assert!(cfg.validate().unwrap_err().to_string().contains("arity"));

        let mut cfg = SystemConfig::paper();
        cfg.security.crypto_ns_per_block = 2_000_000_000;
        assert!(cfg.validate().unwrap_err().to_string().contains("latency"));

        let mut cfg = SystemConfig::paper();
        cfg.security.mac_ns_per_block = 2_000_000_000;
        assert!(cfg.validate().unwrap_err().to_string().contains("latency"));
    }

    #[test]
    fn validation_rejects_seed_collisions_across_all_domains() {
        // security == media
        let mut cfg = SystemConfig::hardened();
        cfg.security.seed = cfg.media.seed;
        assert!(cfg.validate().unwrap_err().to_string().contains("seed"));

        // security == dram
        let mut cfg = SystemConfig::hardened();
        cfg.security.seed = cfg.dram_fault.seed;
        assert!(cfg.validate().unwrap_err().to_string().contains("seed"));

        // dram == media (pre-existing rule still holds under hardened()).
        let mut cfg = SystemConfig::hardened();
        cfg.dram_fault.seed = cfg.media.seed;
        assert!(cfg.validate().unwrap_err().to_string().contains("seed"));

        // A collision with a *disabled* domain is harmless.
        let mut cfg = SystemConfig::hardened();
        cfg.security.enabled = false;
        cfg.security.seed = cfg.media.seed;
        cfg.validate().expect("collision with disabled domain allowed");
    }

    #[test]
    fn wpq_defaults_off_with_distinct_seed() {
        let w = SystemConfig::paper().wpq;
        assert!(!w.enabled);
        assert_eq!(w.capacity, 64);
        assert_eq!(w.salvage_rate, 0.5);
        assert_ne!(w.seed, MediaFaultConfig::default().seed);
        assert_ne!(w.seed, DramFaultConfig::default().seed);
        assert_ne!(w.seed, SecurityConfig::default().seed);
        // Armed preset flips only the switch — and is deliberately not part
        // of hardened(): fence stalls change cycle counts.
        assert_eq!(PersistBufferConfig::armed(), PersistBufferConfig {
            enabled: true,
            ..PersistBufferConfig::default()
        });
        assert!(!SystemConfig::hardened().wpq.enabled);
    }

    #[test]
    fn validation_rejects_bad_wpq_combinations() {
        let mut cfg = SystemConfig::paper();
        cfg.wpq.salvage_rate = 1.5;
        assert!(cfg.validate().unwrap_err().to_string().contains("probability"));

        let mut cfg = SystemConfig::paper();
        cfg.wpq = PersistBufferConfig::armed();
        cfg.wpq.capacity = 0;
        assert!(cfg.validate().unwrap_err().to_string().contains("capacity"));

        // Seed collisions with each enabled sibling domain.
        let mut cfg = SystemConfig::hardened();
        cfg.wpq = PersistBufferConfig::armed();
        cfg.wpq.seed = cfg.media.seed;
        assert!(cfg.validate().unwrap_err().to_string().contains("seed"));

        let mut cfg = SystemConfig::hardened();
        cfg.wpq = PersistBufferConfig::armed();
        cfg.wpq.seed = cfg.dram_fault.seed;
        assert!(cfg.validate().unwrap_err().to_string().contains("seed"));

        let mut cfg = SystemConfig::hardened();
        cfg.wpq = PersistBufferConfig::armed();
        cfg.wpq.seed = cfg.security.seed;
        assert!(cfg.validate().unwrap_err().to_string().contains("seed"));

        // Disabled buffer skips capacity validation entirely.
        let mut cfg = SystemConfig::paper();
        cfg.wpq.capacity = 0;
        cfg.validate().expect("disabled WPQ is not validated");
    }

    #[test]
    fn config_is_cloneable_and_comparable() {
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<SystemConfig>();
        let cfg = SystemConfig::paper();
        assert_eq!(cfg, cfg.clone());
    }
}
