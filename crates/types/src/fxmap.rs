//! Deterministic, fast hashing for simulator-internal maps.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3) is keyed with per-process
//! randomness and costs tens of nanoseconds per lookup — both properties
//! are wrong for this simulator. The hot path performs several map lookups
//! per simulated memory access (BTT/PTT entries, store counters, device
//! row-write tracking), where SipHash dominates; and while nothing in the
//! workspace iterates a hash map in an order-sensitive way without sorting
//! first, a randomly-keyed hasher makes that invariant unverifiable run to
//! run.
//!
//! [`FxHasher`] is the Fowler-style multiply-rotate hash used by rustc
//! (widely known as FxHash): not DoS-resistant — irrelevant here, keys are
//! simulator-internal addresses and indices — but one rotate/xor/multiply
//! per word, fully deterministic across runs and platforms (the state is
//! always 64-bit, independent of `usize` width).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed by the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed by the deterministic [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// rustc's FxHash: `state = (state <<< 5 ^ word) * K` per 64-bit word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

/// The multiplier: 2^64 / phi, the classic Fibonacci-hashing constant.
const K: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold in the length so "ab" and "ab\0" hash differently.
            self.add_word(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_word(n as u64);
        self.add_word((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        // Always widen to 64 bits so 32- and 64-bit hosts agree.
        self.add_word(n as u64);
    }

    #[inline]
    fn write_i8(&mut self, n: i8) {
        self.write_u8(n as u8);
    }

    #[inline]
    fn write_i16(&mut self, n: i16) {
        self.write_u16(n as u16);
    }

    #[inline]
    fn write_i32(&mut self, n: i32) {
        self.write_u32(n as u32);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_isize(&mut self, n: isize) {
        self.write_usize(n as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(hash_of(0xdead_beefu64), hash_of(0xdead_beefu64));
        assert_eq!(hash_of("some key"), hash_of("some key"));
    }

    #[test]
    fn known_values_are_pinned() {
        // Pin the exact hash so an accidental algorithm change (which would
        // silently reshuffle every map's growth pattern) is caught. These
        // values must never vary by platform.
        assert_eq!(hash_of(0u64), 0);
        assert_eq!(hash_of(1u64), K);
        let mut h = FxHasher::default();
        h.write_u64(2);
        h.write_u64(3);
        assert_eq!(h.finish(), (2u64.wrapping_mul(K).rotate_left(5) ^ 3).wrapping_mul(K));
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(hash_of(i * 4096));
        }
        assert_eq!(seen.len(), 10_000, "page-aligned keys must not collide");
    }

    #[test]
    fn byte_slices_fold_tail_and_length() {
        assert_ne!(hash_of(b"ab".as_slice()), hash_of(b"ab\0".as_slice()));
        assert_ne!(hash_of(b"".as_slice()), hash_of(b"\0".as_slice()));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        m.insert(7, 1);
        assert_eq!(m.get(&7), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(s.contains(&9));
    }
}
