//! The simulated clock.
//!
//! All timing in the simulator is expressed in CPU cycles of the paper's
//! 3 GHz in-order core (Table 2). Device latencies given in nanoseconds are
//! converted with [`Cycle::from_ns`].

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::config::CPU_FREQ_GHZ;

/// A point in (or duration of) simulated time, measured in CPU cycles.
///
/// `Cycle` is used both as an absolute timestamp and as a duration; the
/// arithmetic operators treat it as a plain unsigned quantity.
///
/// # Example
///
/// ```
/// use thynvm_types::Cycle;
/// let t = Cycle::ZERO + Cycle::from_ns(40); // a DRAM row hit
/// assert_eq!(t.raw(), 120);                 // 40 ns @ 3 GHz
/// assert_eq!(t.as_ns(), 40.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycle(u64);

impl Cycle {
    /// Time zero / the empty duration.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle count from a raw number of cycles.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw cycle count.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Converts a nanosecond latency to cycles at the 3 GHz core clock,
    /// rounding to the nearest cycle.
    pub fn from_ns(ns: u64) -> Self {
        Self(ns * CPU_FREQ_GHZ)
    }

    /// Converts a microsecond duration to cycles.
    pub fn from_us(us: u64) -> Self {
        Self::from_ns(us * 1_000)
    }

    /// Converts a millisecond duration to cycles.
    pub fn from_ms(ms: u64) -> Self {
        Self::from_ns(ms * 1_000_000)
    }

    /// This duration expressed in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / CPU_FREQ_GHZ as f64
    }

    /// This duration expressed in seconds.
    pub fn as_secs(self) -> f64 {
        self.as_ns() * 1e-9
    }

    /// Saturating subtraction; clamps at zero instead of underflowing.
    #[must_use]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// The later of two instants.
    #[must_use]
    pub fn max(self, rhs: Self) -> Self {
        Self(self.0.max(rhs.0))
    }

    /// The earlier of two instants.
    #[must_use]
    pub fn min(self, rhs: Self) -> Self {
        Self(self.0.min(rhs.0))
    }
}

impl Add for Cycle {
    type Output = Cycle;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for Cycle {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl SubAssign for Cycle {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 -= rhs.0;
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Self {
        iter.fold(Cycle::ZERO, Add::add)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(raw: u64) -> Self {
        Self::new(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_conversion_at_3ghz() {
        assert_eq!(Cycle::from_ns(40).raw(), 120);
        assert_eq!(Cycle::from_ns(80).raw(), 240);
        assert_eq!(Cycle::from_ns(128).raw(), 384);
        assert_eq!(Cycle::from_ns(368).raw(), 1104);
        assert_eq!(Cycle::from_ns(3).raw(), 9);
    }

    #[test]
    fn larger_units() {
        assert_eq!(Cycle::from_us(1), Cycle::from_ns(1_000));
        assert_eq!(Cycle::from_ms(10).raw(), 30_000_000);
    }

    #[test]
    fn roundtrip_to_ns() {
        let c = Cycle::from_ns(368);
        assert!((c.as_ns() - 368.0).abs() < 1e-9);
        assert!((Cycle::from_ms(1).as_secs() - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let mut t = Cycle::new(10);
        t += Cycle::new(5);
        assert_eq!(t, Cycle::new(15));
        t -= Cycle::new(3);
        assert_eq!(t, Cycle::new(12));
        assert_eq!(t + Cycle::new(1), Cycle::new(13));
        assert_eq!(t - Cycle::new(2), Cycle::new(10));
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(Cycle::new(3).saturating_sub(Cycle::new(10)), Cycle::ZERO);
        assert_eq!(Cycle::new(10).saturating_sub(Cycle::new(3)), Cycle::new(7));
    }

    #[test]
    fn min_max() {
        let (a, b) = (Cycle::new(3), Cycle::new(9));
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn sum_of_cycles() {
        let total: Cycle = [1u64, 2, 3].into_iter().map(Cycle::new).sum();
        assert_eq!(total, Cycle::new(6));
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(Cycle::new(42).to_string(), "42cy");
        assert_eq!(Cycle::ZERO.to_string(), "0cy");
    }
}
