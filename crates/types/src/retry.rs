//! The single deterministic bounded-retry policy every fault domain uses.
//!
//! Three controller paths perform bounded retries with linear backoff: NVM
//! data reads healing CRC-rejected corruption, recovery-side reads of
//! checkpoint metadata, and DRAM re-reads of poisoned working blocks. Each
//! used to hand-roll the same `for attempt in 1..=max { backoff * attempt }`
//! loop; [`RetryPolicy`] extracts the schedule into one place so the loops
//! cannot drift apart, the lint rule L6 can reject new hand-rolled copies,
//! and tests can bound worst-case retry latency from the policy alone.
//!
//! The schedule is a pure function of the policy's two parameters — no
//! clock, no randomness — so routing an existing loop through it is
//! cycle-identical by construction: attempt `k` waits `backoff_ns * k`
//! nanoseconds before the device access, exactly as the hand-rolled loops
//! did.

use crate::cycle::Cycle;

/// A bounded, deterministic retry schedule: at most `max_attempts`
/// attempts, attempt `k` (1-based) preceded by a linear backoff of
/// `backoff_ns * k` nanoseconds.
///
/// # Example
///
/// ```
/// use thynvm_types::{Cycle, RetryPolicy};
///
/// let policy = RetryPolicy::new(3, 50);
/// let attempts: Vec<_> = policy.schedule().collect();
/// assert_eq!(attempts.len(), 3);
/// assert_eq!(attempts[0], (1, Cycle::from_ns(50)));
/// assert_eq!(attempts[2], (3, Cycle::from_ns(150)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    max_attempts: u32,
    backoff_ns: u64,
}

impl RetryPolicy {
    /// Builds a policy: `max_attempts` bounded attempts with a linear
    /// `backoff_ns` schedule.
    #[must_use]
    pub const fn new(max_attempts: u32, backoff_ns: u64) -> Self {
        Self { max_attempts, backoff_ns }
    }

    /// Upper bound on attempts — the budget a retry loop may spend.
    #[must_use]
    pub const fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// Backoff paid *before* 1-based attempt `attempt`: linear in the
    /// attempt number, so pressure on a struggling device decays.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Cycle {
        Cycle::from_ns(self.backoff_ns * u64::from(attempt))
    }

    /// The full schedule: `(attempt, backoff)` pairs for attempts
    /// `1..=max_attempts`. The iterator is the one retry loop shape the
    /// workspace allows (lint rule L6).
    pub fn schedule(&self) -> impl Iterator<Item = (u32, Cycle)> + '_ {
        (1..=self.max_attempts).map(|a| (a, self.backoff(a)))
    }

    /// Total backoff a loop that exhausts the budget pays — the worst-case
    /// added latency of one fully-retried access, used by latency-bound
    /// regression tests.
    #[must_use]
    pub fn total_backoff(&self) -> Cycle {
        // 1 + 2 + … + n = n(n+1)/2 backoff units.
        let n = u64::from(self.max_attempts);
        Cycle::from_ns(self.backoff_ns * n * (n + 1) / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_matches_hand_rolled_loop() {
        // The exact loop shape the controller used before extraction.
        let (max, backoff_ns) = (3u32, 50u64);
        let mut hand = Vec::new();
        for attempt in 1..=max {
            hand.push((attempt, Cycle::from_ns(backoff_ns * u64::from(attempt))));
        }
        let policy = RetryPolicy::new(max, backoff_ns);
        let routed: Vec<_> = policy.schedule().collect();
        assert_eq!(hand, routed, "routing through RetryPolicy must be cycle-identical");
    }

    #[test]
    fn zero_attempts_is_an_empty_schedule() {
        let policy = RetryPolicy::new(0, 50);
        assert_eq!(policy.schedule().count(), 0);
        assert_eq!(policy.total_backoff(), Cycle::ZERO);
    }

    #[test]
    fn total_backoff_is_the_schedule_sum() {
        for (max, ns) in [(1u32, 30u64), (2, 30), (3, 50), (7, 11)] {
            let policy = RetryPolicy::new(max, ns);
            let sum = policy.schedule().fold(Cycle::ZERO, |acc, (_, b)| acc + b);
            assert_eq!(policy.total_backoff(), sum, "max={max} ns={ns}");
        }
    }

    #[test]
    fn accessors_round_trip() {
        let policy = RetryPolicy::new(5, 40);
        assert_eq!(policy.max_attempts(), 5);
        assert_eq!(policy.backoff(2), Cycle::from_ns(80));
    }
}
