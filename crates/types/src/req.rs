//! Memory requests as seen by a memory controller.

use std::fmt;

use crate::addr::PhysAddr;

/// Whether an access reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load / read access.
    Read,
    /// A store / write access.
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Write`].
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "R",
            AccessKind::Write => "W",
        })
    }
}

/// A single memory request: an address, a direction, and a size in bytes.
///
/// Requests arriving at the memory controller have already traversed the
/// cache hierarchy, so in the timing path they are normally one cache block
/// (64 B); the functional path also issues arbitrary-sized requests.
///
/// # Example
///
/// ```
/// use thynvm_types::{MemRequest, PhysAddr, AccessKind};
/// let r = MemRequest::write(PhysAddr::new(0x40), 64);
/// assert!(r.kind.is_write());
/// assert_eq!(r.end_addr().raw(), 0x80);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRequest {
    /// Target physical address (first byte touched).
    pub addr: PhysAddr,
    /// Read or write.
    pub kind: AccessKind,
    /// Number of bytes touched.
    pub bytes: u32,
}

impl MemRequest {
    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero: a zero-length access is meaningless and
    /// would corrupt traffic statistics silently.
    pub fn new(addr: PhysAddr, kind: AccessKind, bytes: u32) -> Self {
        assert!(bytes > 0, "memory request must touch at least one byte");
        Self { addr, kind, bytes }
    }

    /// Convenience constructor for a read.
    pub fn read(addr: PhysAddr, bytes: u32) -> Self {
        Self::new(addr, AccessKind::Read, bytes)
    }

    /// Convenience constructor for a write.
    pub fn write(addr: PhysAddr, bytes: u32) -> Self {
        Self::new(addr, AccessKind::Write, bytes)
    }

    /// One past the last byte touched by this request.
    pub fn end_addr(&self) -> PhysAddr {
        self.addr.offset(u64::from(self.bytes))
    }

    /// Iterates over the physical block base addresses this request covers.
    pub fn blocks_touched(&self) -> impl Iterator<Item = PhysAddr> {
        let first = self.addr.block_aligned().raw();
        let last = self.end_addr().offset(crate::addr::BLOCK_BYTES - 1).block_aligned().raw();
        (first..last).step_by(crate::addr::BLOCK_BYTES as usize).map(PhysAddr::new)
    }
}

impl fmt::Display for MemRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} x{}", self.kind, self.addr, self.bytes)
    }
}

/// One event of a memory trace: a number of non-memory instructions executed
/// since the previous event, followed by one memory access.
///
/// Workload generators produce streams of `TraceEvent`s; the in-order core
/// model charges one cycle per gap instruction and then performs the access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// Non-memory instructions preceding the access (1 cycle each on the
    /// 3 GHz in-order core).
    pub gap: u32,
    /// The memory access itself.
    pub req: MemRequest,
}

impl TraceEvent {
    /// Creates a trace event.
    pub fn new(gap: u32, req: MemRequest) -> Self {
        Self { gap, req }
    }

    /// Total instructions this event represents (gap + the memory
    /// instruction itself).
    pub fn instructions(&self) -> u64 {
        u64::from(self.gap) + 1
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "+{} {}", self.gap, self.req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_event_instructions() {
        let e = TraceEvent::new(9, MemRequest::read(PhysAddr::new(0), 8));
        assert_eq!(e.instructions(), 10);
        assert_eq!(e.to_string(), "+9 R p:0x0 x8");
    }

    #[test]
    fn constructors() {
        let r = MemRequest::read(PhysAddr::new(0), 8);
        assert_eq!(r.kind, AccessKind::Read);
        assert!(!r.kind.is_write());
        let w = MemRequest::write(PhysAddr::new(64), 64);
        assert!(w.kind.is_write());
    }

    #[test]
    #[should_panic(expected = "at least one byte")]
    fn zero_byte_request_rejected() {
        MemRequest::read(PhysAddr::new(0), 0);
    }

    #[test]
    fn end_addr() {
        let r = MemRequest::write(PhysAddr::new(100), 28);
        assert_eq!(r.end_addr().raw(), 128);
    }

    #[test]
    fn blocks_touched_single_block() {
        let r = MemRequest::write(PhysAddr::new(10), 8);
        let blocks: Vec<_> = r.blocks_touched().collect();
        assert_eq!(blocks, vec![PhysAddr::new(0)]);
    }

    #[test]
    fn blocks_touched_straddles_boundary() {
        let r = MemRequest::write(PhysAddr::new(60), 8); // bytes 60..68
        let blocks: Vec<_> = r.blocks_touched().collect();
        assert_eq!(blocks, vec![PhysAddr::new(0), PhysAddr::new(64)]);
    }

    #[test]
    fn blocks_touched_large_write() {
        let r = MemRequest::write(PhysAddr::new(0), 256);
        assert_eq!(r.blocks_touched().count(), 4);
    }

    #[test]
    fn display() {
        let r = MemRequest::write(PhysAddr::new(64), 64);
        assert_eq!(r.to_string(), "W p:0x40 x64");
    }
}
