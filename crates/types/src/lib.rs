//! Common foundation types for the ThyNVM persistent-memory simulator.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`addr`] — strongly-typed physical/hardware addresses and block/page
//!   indices (64 B cache blocks, 4 KiB pages).
//! * [`cycle`] — the simulated clock ([`Cycle`]) and nanosecond conversion at
//!   the paper's 3 GHz core frequency.
//! * [`req`] — memory requests as seen by a memory controller.
//! * [`config`] — the full system configuration of Table 2 of the paper,
//!   plus ThyNVM-specific knobs (BTT/PTT sizes, epoch length, scheme-switch
//!   thresholds).
//! * [`stats`] — statistics counters every memory system reports, including
//!   the NVM write-traffic breakdown of Figure 8 (CPU / checkpoint /
//!   migration).
//! * [`system`] — the [`MemorySystem`] trait implemented by ThyNVM and all
//!   baselines.
//! * [`error`] — the crate-wide error type.
//!
//! # Example
//!
//! ```
//! use thynvm_types::{PhysAddr, BLOCK_BYTES, PAGE_BYTES};
//!
//! let a = PhysAddr::new(0x1234);
//! assert_eq!(a.block().byte_offset(), 0x1200); // 64 B-aligned
//! assert_eq!(a.page().byte_offset(), 0x1000);  // 4 KiB-aligned
//! assert_eq!(BLOCK_BYTES * 64, PAGE_BYTES);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod config;
pub mod cycle;
pub mod error;
pub mod fxmap;
pub mod hist;
pub mod req;
pub mod retry;
pub mod rng;
pub mod stats;
pub mod system;

pub use addr::{BlockIndex, HwAddr, PageIndex, PhysAddr, BLOCK_BYTES, BLOCKS_PER_PAGE, PAGE_BYTES};
pub use config::{
    CacheConfig, CkptMode, DeviceGeometry, DramFaultConfig, HealthConfig, MediaFaultConfig,
    PersistBufferConfig, SecurityConfig, SystemConfig, ThyNvmConfig, TimingConfig, WorkingRegion,
    CPU_FREQ_GHZ,
};
pub use cycle::Cycle;
pub use error::{Error, Result};
pub use fxmap::{FxHashMap, FxHashSet, FxHasher};
pub use hist::Histogram;
pub use req::{AccessKind, MemRequest, TraceEvent};
pub use retry::RetryPolicy;
pub use stats::{
    CkptPhase, CrashEvent, DramStats, FaultKind, HealthRung, HealthStats, MediaStats, MemStats,
    NvmWriteClass, PerfStats, RecoveryOutcome, RecoveryStep, RetryStats, SecurityStats, WpqStats,
};
pub use system::{MemorySystem, PersistentMemory};
