//! The interface every evaluated memory system implements.

use crate::addr::PhysAddr;
use crate::cycle::Cycle;
use crate::req::MemRequest;
use crate::stats::MemStats;

/// A timing model of a (possibly persistent) main-memory system.
///
/// This is the common surface shared by ThyNVM and the four baselines of §5.1
/// (Ideal DRAM, Ideal NVM, Journaling, Shadow Paging). Drivers — the CPU
/// model, workload replayers, and the benchmark harness — interact with
/// memory exclusively through this trait, so every system sees the same
/// request stream.
///
/// Requests are issued in nondecreasing `now` order. The implementation
/// returns the cycle at which the request completes; the caller decides
/// whether and how long that stalls the core.
///
/// # Example
///
/// ```no_run
/// use thynvm_types::{Cycle, MemRequest, MemorySystem, PhysAddr};
///
/// fn run_one(sys: &mut dyn MemorySystem) {
///     let done = sys.access(&MemRequest::write(PhysAddr::new(0x40), 64), Cycle::ZERO);
///     let idle = sys.drain(done);
///     assert!(idle >= done);
/// }
/// ```
pub trait MemorySystem {
    /// Services one request arriving at cycle `now`; returns its completion
    /// cycle (`>= now`).
    ///
    /// For systems with crash-consistency support this is where epoch
    /// bookkeeping, remapping, buffering and stalls happen.
    fn access(&mut self, req: &MemRequest, now: Cycle) -> Cycle;

    /// Whether the system wants the platform to end the current epoch now
    /// (§4.4: "the memory controller notifies the processor when an
    /// execution phase is completed").
    ///
    /// Systems without epochs (the ideal baselines) never request one.
    fn checkpoint_due(&self, now: Cycle) -> bool {
        let _ = now;
        false
    }

    /// Ends the epoch: the processor has stalled and performed its data
    /// flush, handing over the dirty cache blocks (`flushed`). The system
    /// persists them together with its metadata and CPU state, then begins
    /// (or completes) checkpointing.
    ///
    /// Returns the cycle at which the *processor may resume execution*.
    /// Overlapping designs (ThyNVM) return early and continue checkpointing
    /// in the background; stop-the-world designs return the checkpoint
    /// completion time.
    fn begin_checkpoint(&mut self, now: Cycle, flushed: &[PhysAddr]) -> Cycle {
        let _ = flushed;
        now
    }

    /// Completes all outstanding background work (in-flight checkpoints,
    /// queued flushes) and returns the cycle at which the system is idle.
    ///
    /// Called at the end of a measured run so that deferred checkpoint costs
    /// are charged to the workload that incurred them.
    fn drain(&mut self, now: Cycle) -> Cycle;

    /// Read access to accumulated statistics.
    fn stats(&self) -> &MemStats;

    /// Short system name used in reports (e.g. `"ThyNVM"`, `"Journal"`).
    fn name(&self) -> &'static str;
}

/// A memory system with *functional* persistence: it stores real bytes,
/// can make them durable, and can be power-failed and recovered.
///
/// Implemented by ThyNVM and by the journaling / shadow-paging baselines,
/// so the same crash-consistency scenarios run against every persistent
/// design. The contract:
///
/// * data written by [`PersistentMemory::store_bytes`] becomes durable at
///   the *next durability point* — an epoch end / flush — not before;
/// * [`PersistentMemory::persist`] forces a durability point and returns
///   only once the data is actually safe;
/// * [`PersistentMemory::power_fail`] destroys all volatile state and runs
///   recovery; afterwards loads observe exactly the image of the last
///   durability point that completed before the failure.
pub trait PersistentMemory: MemorySystem {
    /// Writes `data` at `addr`, updating contents and paying timing costs.
    /// Returns the store's acknowledgement cycle.
    fn store_bytes(&mut self, addr: PhysAddr, data: &[u8], now: Cycle) -> Cycle;

    /// Reads `buf.len()` bytes at `addr` from the software-visible image.
    /// Returns the load's completion cycle.
    fn load_bytes(&mut self, addr: PhysAddr, buf: &mut [u8], now: Cycle) -> Cycle;

    /// Forces a durability point and waits for it to complete.
    fn persist(&mut self, now: Cycle) -> Cycle;

    /// Power failure + recovery; returns the cycle at which the system is
    /// usable again.
    fn power_fail(&mut self, now: Cycle) -> Cycle;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::req::AccessKind;
    use crate::PhysAddr;

    /// A trivial fixed-latency memory used to exercise the trait surface and
    /// confirm object safety.
    #[derive(Debug, Default)]
    struct FixedLatency {
        stats: MemStats,
    }

    impl MemorySystem for FixedLatency {
        fn access(&mut self, req: &MemRequest, now: Cycle) -> Cycle {
            match req.kind {
                AccessKind::Read => self.stats.reads += 1,
                AccessKind::Write => self.stats.writes += 1,
            }
            now + Cycle::new(100)
        }

        fn drain(&mut self, now: Cycle) -> Cycle {
            now
        }

        fn stats(&self) -> &MemStats {
            &self.stats
        }

        fn name(&self) -> &'static str {
            "Fixed"
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let mut sys = FixedLatency::default();
        let dynref: &mut dyn MemorySystem = &mut sys;
        let done = dynref.access(&MemRequest::read(PhysAddr::new(0), 64), Cycle::new(5));
        assert_eq!(done, Cycle::new(105));
        assert_eq!(dynref.drain(done), done);
        assert_eq!(dynref.stats().reads, 1);
        assert_eq!(dynref.name(), "Fixed");
    }

    #[test]
    fn accesses_accumulate_stats() {
        let mut sys = FixedLatency::default();
        for i in 0..4 {
            let kind = if i % 2 == 0 { AccessKind::Read } else { AccessKind::Write };
            sys.access(&MemRequest::new(PhysAddr::new(i * 64), kind, 64), Cycle::ZERO);
        }
        assert_eq!(sys.stats().reads, 2);
        assert_eq!(sys.stats().writes, 2);
        assert_eq!(sys.stats().total_accesses(), 4);
    }
}
