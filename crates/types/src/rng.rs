//! Shared deterministic pseudo-random helpers (splitmix64).
//!
//! Every stochastic subsystem in the workspace — the NVM media-fault model,
//! the DRAM ECC model, the security tamper model, and the seeded sweep
//! tests — derives its decisions from splitmix64 so that schedules are pure
//! functions of a seed and a counter. Keeping the single implementation
//! here (instead of per-crate copies) guarantees every stream uses the
//! exact same mixer and keeps the determinism contract auditable in one
//! place.
//!
//! Two calling conventions are provided:
//!
//! * [`mix`] — the stateless *finalizer* form: hash a `(seed, counter)`
//!   pair. Used by the fault models, which key each decision on an
//!   operation counter so replay needs no mutable RNG state.
//! * [`next`] — the streaming form: advance a mutable state word and
//!   return the next output. Used by the sweep tests to draw trial
//!   parameters.

/// splitmix64 finalizer: a high-quality 64-bit mix of `seed` and a
/// per-event counter `n`. Pure function — same inputs, same output.
#[must_use]
pub fn mix(seed: u64, n: u64) -> u64 {
    let mut z = seed.wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Streaming splitmix64: advances `state` by the golden-ratio increment and
/// returns the finalized output. Equivalent to the reference generator.
pub fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a 64-bit hash to a uniform float in `[0, 1)`.
#[must_use]
pub fn unit(hash: u64) -> f64 {
    (hash >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_a_pure_function() {
        assert_eq!(mix(1, 2), mix(1, 2));
        assert_ne!(mix(1, 2), mix(1, 3));
        assert_ne!(mix(1, 2), mix(2, 2));
    }

    #[test]
    fn next_matches_mix_of_successive_counters() {
        // The streaming form with state = seed produces the same outputs as
        // the finalizer keyed on counters 1, 2, 3, …: both add n times the
        // golden-ratio increment before finalizing.
        let seed = 0xDEAD_BEEF_u64;
        let mut state = seed;
        for n in 1..=64u64 {
            assert_eq!(next(&mut state), mix(seed, n), "divergence at n={n}");
        }
    }

    #[test]
    fn unit_is_in_half_open_interval() {
        let mut state = 7u64;
        for _ in 0..1000 {
            let u = unit(next(&mut state));
            assert!((0.0..1.0).contains(&u), "u={u}");
        }
        assert_eq!(unit(0), 0.0);
        assert!(unit(u64::MAX) < 1.0);
    }

    #[test]
    fn streams_with_different_seeds_diverge() {
        let (mut a, mut b) = (1u64, 2u64);
        let sa: Vec<u64> = (0..16).map(|_| next(&mut a)).collect();
        let sb: Vec<u64> = (0..16).map(|_| next(&mut b)).collect();
        assert_ne!(sa, sb);
    }
}
