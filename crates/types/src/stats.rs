//! Statistics every memory system reports.
//!
//! The counters here are exactly the quantities the paper's evaluation plots:
//! NVM write traffic split into CPU / checkpointing / migration components
//! (Figure 8), checkpointing time share (Figures 3 & 8), write bandwidth
//! (Figure 10), and enough raw counts to derive execution time and IPC
//! (Figures 7 & 11).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::cycle::Cycle;

/// Classification of a write reaching NVM, for the Figure 8 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NvmWriteClass {
    /// Direct write from the CPU (last-level-cache writeback or remapped
    /// store serviced in NVM).
    Cpu,
    /// Write performed while creating a checkpoint (page writeback, buffered
    /// block drain, metadata/CPU-state persist, journal/shadow flushes).
    Checkpoint,
    /// Write caused by migrating a page between the two checkpointing
    /// schemes (§3.4).
    Migration,
}

impl fmt::Display for NvmWriteClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NvmWriteClass::Cpu => "cpu",
            NvmWriteClass::Checkpoint => "checkpoint",
            NvmWriteClass::Migration => "migration",
        })
    }
}

/// Aggregated statistics of one memory-system run.
///
/// All byte counters are cumulative; all cycle counters are sums of simulated
/// time. A fresh value is all-zero ([`MemStats::default`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Read requests serviced.
    pub reads: u64,
    /// Write requests serviced.
    pub writes: u64,
    /// Reads serviced by DRAM.
    pub dram_reads: u64,
    /// Writes serviced by DRAM.
    pub dram_writes: u64,
    /// Reads serviced by NVM.
    pub nvm_reads: u64,
    /// Writes serviced by NVM.
    pub nvm_writes: u64,
    /// Bytes written to DRAM.
    pub dram_write_bytes: u64,
    /// Bytes written to NVM by direct CPU traffic.
    pub nvm_write_bytes_cpu: u64,
    /// Bytes written to NVM by checkpointing work.
    pub nvm_write_bytes_ckpt: u64,
    /// Bytes written to NVM by inter-scheme page migration.
    pub nvm_write_bytes_migration: u64,
    /// Bytes read from NVM.
    pub nvm_read_bytes: u64,
    /// Bytes read from DRAM.
    pub dram_read_bytes: u64,
    /// Completed epochs (equivalently, completed checkpoints).
    pub epochs_completed: u64,
    /// Cycles during which the system was performing checkpoint work.
    pub ckpt_busy_cycles: Cycle,
    /// Cycles the *application* was stalled waiting on checkpointing
    /// (blocked stores, stop-the-world pauses, flush stalls).
    pub ckpt_stall_cycles: Cycle,
    /// Total memory-access service cycles accumulated (sum of request
    /// latencies), used for average-latency reporting.
    pub service_cycles: Cycle,
    /// Pages migrated from block remapping to page writeback.
    pub pages_promoted: u64,
    /// Pages migrated from page writeback to block remapping.
    pub pages_demoted: u64,
}

impl MemStats {
    /// Creates an all-zero statistics record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a write of `bytes` reaching NVM, classified per Figure 8.
    pub fn record_nvm_write(&mut self, bytes: u64, class: NvmWriteClass) {
        self.nvm_writes += 1;
        match class {
            NvmWriteClass::Cpu => self.nvm_write_bytes_cpu += bytes,
            NvmWriteClass::Checkpoint => self.nvm_write_bytes_ckpt += bytes,
            NvmWriteClass::Migration => self.nvm_write_bytes_migration += bytes,
        }
    }

    /// Records a write of `bytes` reaching DRAM.
    pub fn record_dram_write(&mut self, bytes: u64) {
        self.dram_writes += 1;
        self.dram_write_bytes += bytes;
    }

    /// Total bytes written to NVM, all classes combined.
    pub fn nvm_write_bytes_total(&self) -> u64 {
        self.nvm_write_bytes_cpu + self.nvm_write_bytes_ckpt + self.nvm_write_bytes_migration
    }

    /// Total requests serviced.
    pub fn total_accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of `total_cycles` spent on checkpoint work, in percent
    /// (the "% exec. time spent on ckpt." series of Figure 8).
    pub fn ckpt_time_share(&self, total_cycles: Cycle) -> f64 {
        if total_cycles == Cycle::ZERO {
            return 0.0;
        }
        100.0 * self.ckpt_busy_cycles.raw() as f64 / total_cycles.raw() as f64
    }

    /// Average NVM write bandwidth over `total_cycles`, in MB/s
    /// (Figure 10; 1 MB = 10^6 bytes as in the paper's axis).
    pub fn nvm_write_bandwidth_mbps(&self, total_cycles: Cycle) -> f64 {
        let secs = total_cycles.as_secs();
        if secs == 0.0 {
            return 0.0;
        }
        self.nvm_write_bytes_total() as f64 / 1e6 / secs
    }

    /// Average DRAM write bandwidth over `total_cycles`, in MB/s.
    pub fn dram_write_bandwidth_mbps(&self, total_cycles: Cycle) -> f64 {
        let secs = total_cycles.as_secs();
        if secs == 0.0 {
            return 0.0;
        }
        self.dram_write_bytes as f64 / 1e6 / secs
    }

    /// Merges another statistics record into this one (summing all fields).
    pub fn merge(&mut self, other: &MemStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.dram_reads += other.dram_reads;
        self.dram_writes += other.dram_writes;
        self.nvm_reads += other.nvm_reads;
        self.nvm_writes += other.nvm_writes;
        self.dram_write_bytes += other.dram_write_bytes;
        self.nvm_write_bytes_cpu += other.nvm_write_bytes_cpu;
        self.nvm_write_bytes_ckpt += other.nvm_write_bytes_ckpt;
        self.nvm_write_bytes_migration += other.nvm_write_bytes_migration;
        self.nvm_read_bytes += other.nvm_read_bytes;
        self.dram_read_bytes += other.dram_read_bytes;
        self.epochs_completed += other.epochs_completed;
        self.ckpt_busy_cycles += other.ckpt_busy_cycles;
        self.ckpt_stall_cycles += other.ckpt_stall_cycles;
        self.service_cycles += other.service_cycles;
        self.pages_promoted += other.pages_promoted;
        self.pages_demoted += other.pages_demoted;
    }
}

impl fmt::Display for MemStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads={} writes={} nvm_wr_bytes(cpu/ckpt/migr)={}/{}/{} dram_wr_bytes={} epochs={} ckpt_busy={} stalls={}",
            self.reads,
            self.writes,
            self.nvm_write_bytes_cpu,
            self.nvm_write_bytes_ckpt,
            self.nvm_write_bytes_migration,
            self.dram_write_bytes,
            self.epochs_completed,
            self.ckpt_busy_cycles,
            self.ckpt_stall_cycles,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_total() {
        let mut s = MemStats::new();
        s.record_nvm_write(64, NvmWriteClass::Cpu);
        s.record_nvm_write(4096, NvmWriteClass::Checkpoint);
        s.record_nvm_write(4096, NvmWriteClass::Migration);
        assert_eq!(s.nvm_writes, 3);
        assert_eq!(s.nvm_write_bytes_total(), 64 + 4096 + 4096);
        assert_eq!(s.nvm_write_bytes_cpu, 64);
        assert_eq!(s.nvm_write_bytes_ckpt, 4096);
        assert_eq!(s.nvm_write_bytes_migration, 4096);
    }

    #[test]
    fn dram_write_recording() {
        let mut s = MemStats::new();
        s.record_dram_write(64);
        s.record_dram_write(64);
        assert_eq!(s.dram_writes, 2);
        assert_eq!(s.dram_write_bytes, 128);
    }

    #[test]
    fn ckpt_time_share_percentage() {
        let mut s = MemStats::new();
        s.ckpt_busy_cycles = Cycle::new(250);
        assert!((s.ckpt_time_share(Cycle::new(1000)) - 25.0).abs() < 1e-9);
        // Zero total time must not divide by zero.
        assert_eq!(s.ckpt_time_share(Cycle::ZERO), 0.0);
    }

    #[test]
    fn bandwidth_mbps() {
        let mut s = MemStats::new();
        // 3e9 cycles = 1 s at 3 GHz; 100 MB written -> 100 MB/s.
        s.record_nvm_write(100_000_000, NvmWriteClass::Cpu);
        let bw = s.nvm_write_bandwidth_mbps(Cycle::new(3_000_000_000));
        assert!((bw - 100.0).abs() < 1e-6, "bw={bw}");
        assert_eq!(s.nvm_write_bandwidth_mbps(Cycle::ZERO), 0.0);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = MemStats::new();
        a.reads = 1;
        a.ckpt_stall_cycles = Cycle::new(10);
        a.pages_promoted = 2;
        let mut b = MemStats::new();
        b.reads = 2;
        b.ckpt_stall_cycles = Cycle::new(5);
        b.pages_demoted = 1;
        a.merge(&b);
        assert_eq!(a.reads, 3);
        assert_eq!(a.ckpt_stall_cycles, Cycle::new(15));
        assert_eq!(a.pages_promoted, 2);
        assert_eq!(a.pages_demoted, 1);
    }

    #[test]
    fn total_accesses() {
        let mut s = MemStats::new();
        s.reads = 7;
        s.writes = 3;
        assert_eq!(s.total_accesses(), 10);
    }

    #[test]
    fn display_nonempty() {
        assert!(!MemStats::new().to_string().is_empty());
        assert_eq!(NvmWriteClass::Cpu.to_string(), "cpu");
        assert_eq!(NvmWriteClass::Checkpoint.to_string(), "checkpoint");
        assert_eq!(NvmWriteClass::Migration.to_string(), "migration");
    }
}
