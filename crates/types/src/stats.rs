//! Statistics every memory system reports.
//!
//! The counters here are exactly the quantities the paper's evaluation plots:
//! NVM write traffic split into CPU / checkpointing / migration components
//! (Figure 8), checkpointing time share (Figures 3 & 8), write bandwidth
//! (Figure 10), and enough raw counts to derive execution time and IPC
//! (Figures 7 & 11).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::cycle::Cycle;

/// Classification of a write reaching NVM, for the Figure 8 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NvmWriteClass {
    /// Direct write from the CPU (last-level-cache writeback or remapped
    /// store serviced in NVM).
    Cpu,
    /// Write performed while creating a checkpoint (page writeback, buffered
    /// block drain, metadata/CPU-state persist, journal/shadow flushes).
    Checkpoint,
    /// Write caused by migrating a page between the two checkpointing
    /// schemes (§3.4).
    Migration,
}

impl fmt::Display for NvmWriteClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NvmWriteClass::Cpu => "cpu",
            NvmWriteClass::Checkpoint => "checkpoint",
            NvmWriteClass::Migration => "migration",
        })
    }
}

/// Phase of the Figure 6(b) checkpointing sequence a cycle falls in, used
/// to classify where an injected crash landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CkptPhase {
    /// No checkpoint job in flight — the crash hit the execution phase.
    Execution,
    /// Phase 1: draining DRAM-buffered block working copies to NVM.
    DrainBlocks,
    /// Phase 2: persisting the BTT and CPU state to the backup region.
    PersistBtt,
    /// Phase 3: writing dirty pages back to the alternate checkpoint region.
    PageWriteback,
    /// Phase 4: persisting the PTT, flushing the NVM write queue, and
    /// setting the atomic completion flag.
    Finalize,
}

impl fmt::Display for CkptPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CkptPhase::Execution => "execution",
            CkptPhase::DrainBlocks => "drain-blocks",
            CkptPhase::PersistBtt => "persist-btt",
            CkptPhase::PageWriteback => "page-writeback",
            CkptPhase::Finalize => "finalize",
        })
    }
}

/// Which checkpoint image a recovery restored (§4.5 three-version rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RecoveryOutcome {
    /// The last checkpoint's commit record had persisted: recovered to
    /// `C_last`.
    CLast,
    /// The last checkpoint was incomplete and was discarded: recovered to
    /// `C_penult`.
    CPenult,
    /// The last checkpoint had completed but failed media-integrity
    /// verification (torn commit record, corrupted data or metadata), so
    /// recovery discarded it and fell back to `C_penult`.
    CPenultIntegrityFallback,
    /// *Both* checkpoint images failed authentication (secure mode): no
    /// trusted state exists, so recovery reset to the empty image and
    /// surfaced [`crate::Error::IntegrityUnrecoverable`] instead of ever
    /// replaying unauthenticated data.
    Unrecoverable,
}

impl fmt::Display for RecoveryOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RecoveryOutcome::CLast => "C_last",
            RecoveryOutcome::CPenult => "C_penult",
            RecoveryOutcome::CPenultIntegrityFallback => "C_penult (integrity)",
            RecoveryOutcome::Unrecoverable => "unrecoverable",
        })
    }
}

/// One step of the restartable §4.5 recovery sequence.
///
/// Recovery is modeled as a cycle-accounted step machine rather than an
/// instantaneous call, so a crash point can land *inside* recovery. Each
/// step is idempotent: a nested crash restarts the whole sequence from the
/// persisted commit record and converges to the same image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RecoveryStep {
    /// Read the 64 B commit record from the backup region to locate the
    /// newest completed checkpoint.
    ReadCommitRecord,
    /// Verify the CRCs of `C_last` (commit record, data, metadata images).
    VerifyClast,
    /// Secure mode: authenticate `C_last` against its stored MAC root and
    /// the persisted counter-table generation, classifying any mismatch
    /// (tamper vs. torn vs. media) before trusting the image.
    VerifyMacs,
    /// `C_last` failed verification: write-ahead, then durably void it and
    /// promote `C_penult`, sealing the decision with a CRC'd record.
    IntegrityFallback,
    /// Replay the persisted BTT/PTT metadata images (§4.5 step 1).
    ReplayMetadata,
    /// Reload checkpointed pages into the DRAM working set (§4.5 step 2).
    RearmWorkingSet,
}

impl fmt::Display for RecoveryStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RecoveryStep::ReadCommitRecord => "read-commit-record",
            RecoveryStep::VerifyClast => "verify-clast",
            RecoveryStep::VerifyMacs => "verify-macs",
            RecoveryStep::IntegrityFallback => "integrity-fallback",
            RecoveryStep::ReplayMetadata => "replay-metadata",
            RecoveryStep::RearmWorkingSet => "rearm-working-set",
        })
    }
}

/// Kind of an NVM media fault, for classification in [`MediaStats`] and in
/// [`crate::Error::MediaCorruption`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// A transient bit flip: one read returns a flipped bit, a retry of the
    /// same location reads back clean.
    BitFlip,
    /// A worn-out cell stuck at a fixed value: every read of the location
    /// is corrupted until the block is remapped.
    StuckAt,
    /// A torn write: power was lost during a multi-word device commit and
    /// only a prefix/subset of the words persisted.
    TornWrite,
    /// Corrupted serialized checkpoint metadata (BTT/PTT image or commit
    /// record) in the backup region.
    Metadata,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::BitFlip => "bit-flip",
            FaultKind::StuckAt => "stuck-at",
            FaultKind::TornWrite => "torn-write",
            FaultKind::Metadata => "metadata",
        })
    }
}

/// Media-fault and integrity-protection counters (the self-healing
/// telemetry of the hardened recovery path).
///
/// Fault counters classify by [`FaultKind`]: `bit_flips` counts transient
/// flips observed on reads (plus injected `C_last` data corruption),
/// `stuck_faults` counts cells the wear model marked permanently bad,
/// `torn_writes` counts multi-word commits clipped by power loss, and
/// `meta_corruptions` counts checkpoint-metadata images that failed their
/// checksum. The remaining counters describe what the controller did about
/// the faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MediaStats {
    /// Transient bit flips observed on reads.
    pub bit_flips: u64,
    /// Cells that became permanently stuck (wear model).
    pub stuck_faults: u64,
    /// Torn multi-word device commits.
    pub torn_writes: u64,
    /// Corrupted checkpoint-metadata images.
    pub meta_corruptions: u64,
    /// Read retries issued while healing detected corruption.
    pub retries: u64,
    /// Blocks remapped to spare locations via the persistent bad-block
    /// table.
    pub remaps: u64,
    /// Blocks proactively repaired by the background scrubber between
    /// epochs.
    pub scrub_repairs: u64,
    /// Recoveries that discarded a completed-but-corrupt `C_last` and fell
    /// back to `C_penult`.
    pub integrity_fallbacks: u64,
    /// Corrupted reads delivered to software because integrity checking
    /// was disabled.
    pub silent_corruptions: u64,
    /// Remap attempts abandoned because every spare block was already in
    /// use; the affected block keeps being served through CRC retries.
    pub spare_exhausted: u64,
    /// Write-ahead records durably sealed for recovery-side NVM mutations
    /// (bad-block remaps, integrity fallbacks).
    pub wal_seals: u64,
    /// Write-ahead records found torn (unsealed) after a nested crash and
    /// redone from scratch instead of compounded.
    pub wal_redos: u64,
    /// 64 B blocks whose CRC was computed or verified.
    pub crc_checked_blocks: u64,
    /// Cycles spent computing/verifying CRCs (attributed only while
    /// integrity checking is enabled).
    pub crc_check_cycles: Cycle,
}

impl MediaStats {
    /// Bumps the counter for one observed fault of `kind`.
    pub fn record_fault(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::BitFlip => self.bit_flips += 1,
            FaultKind::StuckAt => self.stuck_faults += 1,
            FaultKind::TornWrite => self.torn_writes += 1,
            FaultKind::Metadata => self.meta_corruptions += 1,
        }
    }

    /// Total faults observed, all kinds combined.
    #[must_use]
    pub fn total_faults(&self) -> u64 {
        self.bit_flips + self.stuck_faults + self.torn_writes + self.meta_corruptions
    }

    /// Whether any media-fault activity was recorded at all.
    #[must_use]
    pub fn any(&self) -> bool {
        self.total_faults() > 0
            || self.retries > 0
            || self.remaps > 0
            || self.scrub_repairs > 0
            || self.crc_checked_blocks > 0
            || self.spare_exhausted > 0
            || self.wal_seals > 0
            || self.wal_redos > 0
    }

    /// Merges another record into this one (summing all fields).
    pub fn merge(&mut self, other: &MediaStats) {
        self.bit_flips += other.bit_flips;
        self.stuck_faults += other.stuck_faults;
        self.torn_writes += other.torn_writes;
        self.meta_corruptions += other.meta_corruptions;
        self.retries += other.retries;
        self.remaps += other.remaps;
        self.scrub_repairs += other.scrub_repairs;
        self.integrity_fallbacks += other.integrity_fallbacks;
        self.silent_corruptions += other.silent_corruptions;
        self.spare_exhausted += other.spare_exhausted;
        self.wal_seals += other.wal_seals;
        self.wal_redos += other.wal_redos;
        self.crc_checked_blocks += other.crc_checked_blocks;
        self.crc_check_cycles += other.crc_check_cycles;
    }
}

/// DRAM fault-domain counters: SEC-DED ECC corrections, poisoned 64 B
/// blocks, and what the controller did about the poison.
///
/// Poison bookkeeping is conservative by construction: every block the ECC
/// model poisons is eventually re-fetched from its checkpoint copy
/// (`poison_refetched`), dropped by a quarantine (`poison_dropped`),
/// overwritten whole by a fresh store (`poison_overwritten`), or wiped by a
/// power cycle (`poison_cleared_by_crash`) — so
/// `poisoned_blocks == poison_accounted() + outstanding poison`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Single-bit transients corrected by the SEC-DED code.
    pub corrected_flips: u64,
    /// 64 B blocks poisoned by detected-but-uncorrectable multi-bit errors.
    pub poisoned_blocks: u64,
    /// Poisoned blocks healed by transparently re-fetching the block from
    /// its NVM checkpoint copy (clean data, nothing lost).
    pub poison_refetched: u64,
    /// Bounded DRAM re-read attempts spent on poisoned blocks before
    /// falling back to the checkpoint copy.
    pub refetch_retries: u64,
    /// Poisoned blocks whose dirty data was dropped by a quarantine (the
    /// only path where poison costs data — surfaced as
    /// [`crate::Error::DramPoisonLost`], never silently persisted).
    pub poison_dropped: u64,
    /// Poisoned blocks cleared because a store overwrote the whole block
    /// with fresh data (the write re-encodes the ECC word).
    pub poison_overwritten: u64,
    /// Poisoned blocks wiped by a power cycle — DRAM poison is volatile,
    /// and recovery re-arms the working set from NVM checkpoint copies.
    pub poison_cleared_by_crash: u64,
    /// Dirty PTT pages quarantined at checkpoint time: their writeback was
    /// suppressed and the page rolled back to its `C_last` version.
    pub quarantined_pages: u64,
    /// Dirty bytes dropped by quarantine rollbacks (page- and
    /// block-granularity combined).
    pub quarantine_dropped_bytes: u64,
}

impl DramStats {
    /// Poisoned blocks whose fate has been decided (healed, dropped,
    /// overwritten, or wiped by power loss). The difference
    /// `poisoned_blocks - poison_accounted()` is the poison still
    /// outstanding in DRAM.
    #[must_use]
    pub fn poison_accounted(&self) -> u64 {
        self.poison_refetched
            + self.poison_dropped
            + self.poison_overwritten
            + self.poison_cleared_by_crash
    }

    /// Whether any DRAM fault activity was recorded at all.
    #[must_use]
    pub fn any(&self) -> bool {
        self.corrected_flips > 0
            || self.poisoned_blocks > 0
            || self.refetch_retries > 0
            || self.quarantined_pages > 0
            || self.quarantine_dropped_bytes > 0
    }

    /// Merges another record into this one (summing all fields).
    pub fn merge(&mut self, other: &DramStats) {
        self.corrected_flips += other.corrected_flips;
        self.poisoned_blocks += other.poisoned_blocks;
        self.poison_refetched += other.poison_refetched;
        self.refetch_retries += other.refetch_retries;
        self.poison_dropped += other.poison_dropped;
        self.poison_overwritten += other.poison_overwritten;
        self.poison_cleared_by_crash += other.poison_cleared_by_crash;
        self.quarantined_pages += other.quarantined_pages;
        self.quarantine_dropped_bytes += other.quarantine_dropped_bytes;
    }
}

/// Secure-mode counters: counter-mode encryption traffic, security
/// metadata persists, and the tamper-detection ledger.
///
/// The tamper ledger is conservative by construction: every detected
/// tamper is classified exactly once (`tampers_detected ==
/// classified_tamper + classified_torn + classified_media`) and resolved
/// exactly once (`tampers_detected == verify_fallbacks + unrecoverable`).
/// `classified_media` detections originate from *media* faults caught by
/// the MAC (CRC layer off), not from injected tampers, so the injection
/// bound is `tampers_injected + classified_media >= tampers_detected`;
/// the slack is tampering still armed but not yet applied (no completed
/// checkpoint to tamper with).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecurityStats {
    /// 64 B blocks encrypted on their way to NVM (counter-mode: each bump
    /// of the per-block write counter encrypts one block).
    pub blocks_encrypted: u64,
    /// 64 B blocks decrypted and MAC-verified on NVM reads (including
    /// recovery-side verification reads).
    pub blocks_verified: u64,
    /// Counter-table persists at epoch boundaries (one per completed
    /// checkpoint that had dirty counters).
    pub counter_persists: u64,
    /// Bytes of encryption-counter entries persisted to NVM.
    pub counter_bytes: u64,
    /// Integrity-tree nodes written while persisting security metadata.
    pub tree_node_persists: u64,
    /// Bytes of integrity-tree nodes persisted to NVM.
    pub tree_bytes: u64,
    /// Integrity-tree root (+ MAC record) persists — the atomic tip of the
    /// security metadata, sealed with the checkpoint commit record.
    pub root_persists: u64,
    /// Per-block write counters lost to a mid-epoch crash and re-derived
    /// by bounded replay at recovery (never guessed).
    pub counters_replayed: u64,
    /// Cycles spent in modeled encryption, decryption, and MAC work.
    pub crypto_cycles: Cycle,
    /// Adversarial tampers injected by the fault hooks.
    pub tampers_injected: u64,
    /// Injected tampers detected by MAC/counter verification at recovery.
    pub tampers_detected: u64,
    /// Detections classified as adversarial tampering (MAC forgery or a
    /// rolled-back counter table, i.e. a replay attack).
    pub classified_tamper: u64,
    /// Detections classified as a torn security-metadata write (power loss
    /// mid-persist).
    pub classified_torn: u64,
    /// Detections classified as media corruption caught by the MAC (CRC
    /// layer disabled or bypassed).
    pub classified_media: u64,
    /// Detections resolved by authenticating `C_penult` and falling back
    /// to it (the graceful path).
    pub verify_fallbacks: u64,
    /// Detections where *both* images failed authentication: recovery
    /// reset to the empty image and surfaced
    /// [`crate::Error::IntegrityUnrecoverable`].
    pub unrecoverable: u64,
}

impl SecurityStats {
    /// Detections classified, all classes combined. Conservation:
    /// equals `tampers_detected`.
    #[must_use]
    pub fn classified_total(&self) -> u64 {
        self.classified_tamper + self.classified_torn + self.classified_media
    }

    /// Detections resolved (fallen back or declared unrecoverable).
    /// Conservation: equals `tampers_detected`.
    #[must_use]
    pub fn detections_accounted(&self) -> u64 {
        self.verify_fallbacks + self.unrecoverable
    }

    /// Whether any secure-mode activity was recorded at all.
    #[must_use]
    pub fn any(&self) -> bool {
        self.blocks_encrypted > 0
            || self.blocks_verified > 0
            || self.counter_persists > 0
            || self.tree_node_persists > 0
            || self.root_persists > 0
            || self.counters_replayed > 0
            || self.tampers_injected > 0
            || self.tampers_detected > 0
    }

    /// Merges another record into this one (summing all fields).
    pub fn merge(&mut self, other: &SecurityStats) {
        self.blocks_encrypted += other.blocks_encrypted;
        self.blocks_verified += other.blocks_verified;
        self.counter_persists += other.counter_persists;
        self.counter_bytes += other.counter_bytes;
        self.tree_node_persists += other.tree_node_persists;
        self.tree_bytes += other.tree_bytes;
        self.root_persists += other.root_persists;
        self.counters_replayed += other.counters_replayed;
        self.crypto_cycles += other.crypto_cycles;
        self.tampers_injected += other.tampers_injected;
        self.tampers_detected += other.tampers_detected;
        self.classified_tamper += other.classified_tamper;
        self.classified_torn += other.classified_torn;
        self.classified_media += other.classified_media;
        self.verify_fallbacks += other.verify_fallbacks;
        self.unrecoverable += other.unrecoverable;
    }
}

/// One rung of the graceful-degradation health ladder.
///
/// The ladder is ordered: each rung is strictly worse than the one before
/// it, and the [`Ord`] impl reflects that (`Healthy < Wounded < ReadOnly <
/// FailSafe`). Demotion can skip rungs when a severe signal fires;
/// promotion climbs one rung at a time after a hysteresis window of clean
/// epochs, and `FailSafe` never promotes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum HealthRung {
    /// No degradation signal: full service.
    #[default]
    Healthy,
    /// Cumulative wear or fault pressure detected: checkpoints fire early
    /// and the scrubber runs under a cycle budget, but all traffic is
    /// served.
    Wounded,
    /// Durability can no longer be guaranteed for new data: stores are
    /// rejected with [`crate::Error::Degraded`]; CRC-verified loads and the
    /// in-flight checkpoint still complete.
    ReadOnly,
    /// Trust in the stored state itself is in question (tamper detected or
    /// unrecoverable images): only integrity-verified data is served and
    /// the rung never promotes.
    FailSafe,
}

impl fmt::Display for HealthRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HealthRung::Healthy => "healthy",
            HealthRung::Wounded => "wounded",
            HealthRung::ReadOnly => "read-only",
            HealthRung::FailSafe => "fail-safe",
        })
    }
}

/// Health-ladder counters: ladder movement, degraded-posture actions, and
/// the crash-consistency bookkeeping of the persisted rung.
///
/// Ladder conservation: promotion climbs one rung at a time and only after
/// a demotion put the ladder below `Healthy`, so `promotions <= demotions`
/// always holds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthStats {
    /// Epoch-boundary signal evaluations performed by the monitor.
    pub evaluations: u64,
    /// Ladder demotions (one per transition toward a worse rung, however
    /// many rungs it skipped).
    pub demotions: u64,
    /// Ladder promotions (always exactly one rung after a clean hysteresis
    /// window).
    pub promotions: u64,
    /// Stores rejected with [`crate::Error::Degraded`] while at `ReadOnly`
    /// or `FailSafe`.
    pub stores_rejected: u64,
    /// Checkpoints triggered early by the `Wounded` posture rather than the
    /// epoch timer or dirty-block pressure.
    pub emergency_checkpoints: u64,
    /// Scrub passes cut short by the `Wounded` cycle budget, leaving
    /// remaining stuck cells for a later epoch.
    pub scrub_deferrals: u64,
    /// 64 B health records persisted alongside checkpoint commit records.
    pub rung_persists: u64,
    /// Recoveries that rehydrated the rung from the restored checkpoint
    /// image's persisted health record.
    pub rehydrations: u64,
}

impl HealthStats {
    /// Whether any health-ladder activity was recorded at all.
    #[must_use]
    pub fn any(&self) -> bool {
        self.evaluations > 0
            || self.demotions > 0
            || self.promotions > 0
            || self.stores_rejected > 0
            || self.emergency_checkpoints > 0
            || self.scrub_deferrals > 0
            || self.rung_persists > 0
            || self.rehydrations > 0
    }

    /// Merges another record into this one (summing all fields).
    pub fn merge(&mut self, other: &HealthStats) {
        self.evaluations += other.evaluations;
        self.demotions += other.demotions;
        self.promotions += other.promotions;
        self.stores_rejected += other.stores_rejected;
        self.emergency_checkpoints += other.emergency_checkpoints;
        self.scrub_deferrals += other.scrub_deferrals;
        self.rung_persists += other.rung_persists;
        self.rehydrations += other.rehydrations;
    }
}

/// Per-domain budget accounting for the unified [`crate::RetryPolicy`]:
/// every bounded-retry attempt any domain spends lands in exactly one
/// counter here.
///
/// Conservation: the media-domain loops also bump
/// [`MediaStats::retries`] (the pre-existing healing counter), so
/// `media_attempts + recovery_attempts == MediaStats::retries`, and the
/// DRAM loop mirrors [`DramStats::refetch_retries`] exactly
/// (`dram_attempts == refetch_retries`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryStats {
    /// Attempts spent by the NVM data-read healing loop.
    pub media_attempts: u64,
    /// Attempts spent by recovery-side metadata reads.
    pub recovery_attempts: u64,
    /// Attempts spent re-reading poisoned DRAM blocks.
    pub dram_attempts: u64,
}

impl RetryStats {
    /// Attempts spent across every domain.
    #[must_use]
    pub fn attempts_total(&self) -> u64 {
        self.media_attempts + self.recovery_attempts + self.dram_attempts
    }

    /// Whether any retry budget was spent at all.
    #[must_use]
    pub fn any(&self) -> bool {
        self.attempts_total() > 0
    }

    /// Merges another record into this one (summing all fields).
    pub fn merge(&mut self, other: &RetryStats) {
        self.media_attempts += other.media_attempts;
        self.recovery_attempts += other.recovery_attempts;
        self.dram_attempts += other.dram_attempts;
    }
}

/// Volatile persist-buffer (WPQ) conservation ledger.
///
/// Conservation: every entry that ever entered the buffer is accounted for
/// exactly once — `enqueued == drained + dropped_at_crash +`
/// [`WpqStats::outstanding`] — so a leaked or double-counted persist shows
/// up as a ledger imbalance, not a silent divergence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WpqStats {
    /// Entries that entered the buffer.
    pub enqueued: u64,
    /// Entries made content-durable by draining (retirement, a fence, or
    /// the salvaged prefix of a crash-time partial flush).
    pub drained: u64,
    /// Entries discarded by a crash before they drained.
    pub dropped_at_crash: u64,
    /// Explicit fence (force-drain) operations issued by the controller.
    pub fences: u64,
    /// Cycles the issuer spent stalled on fences and full-buffer
    /// back-pressure.
    pub fence_stall_cycles: Cycle,
    /// Largest number of entries simultaneously pending across all banks —
    /// the maximum window within which a crash can reorder persists.
    pub reorder_window_max: u64,
}

impl WpqStats {
    /// Entries still pending in the buffer (enqueued but neither drained
    /// nor dropped) — the third term of the conservation law.
    #[must_use]
    pub fn outstanding(&self) -> u64 {
        self.enqueued - self.drained - self.dropped_at_crash
    }

    /// Whether the buffer recorded any activity at all.
    #[must_use]
    pub fn any(&self) -> bool {
        self.enqueued > 0 || self.fences > 0
    }

    /// Merges another record into this one (summing the flow counters,
    /// taking the maximum of the window high-water mark).
    pub fn merge(&mut self, other: &WpqStats) {
        self.enqueued += other.enqueued;
        self.drained += other.drained;
        self.dropped_at_crash += other.dropped_at_crash;
        self.fences += other.fences;
        self.fence_stall_cycles += other.fence_stall_cycles;
        self.reorder_window_max = self.reorder_window_max.max(other.reorder_window_max);
    }
}

/// Observability record of one injected crash and its recovery.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashEvent {
    /// Cycle at which power was lost.
    pub cycle: Cycle,
    /// Identifier of the epoch that was executing when the crash hit.
    pub epoch: u64,
    /// Checkpointing phase the crash landed in.
    pub phase: CkptPhase,
    /// Checkpoint writebacks and queued NVM writes still in flight (and
    /// therefore lost) at the crash cycle.
    pub inflight_writebacks: usize,
    /// Which checkpoint image the recovery restored.
    pub outcome: RecoveryOutcome,
    /// `Some(step)` when power was lost *inside* a running recovery (a
    /// nested crash): the recovery step the crash interrupted. `None` for
    /// a top-level crash during normal execution.
    pub recovery_step: Option<RecoveryStep>,
}

/// Aggregated statistics of one memory-system run.
///
/// All byte counters are cumulative; all cycle counters are sums of simulated
/// time. A fresh value is all-zero ([`MemStats::default`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Read requests serviced.
    pub reads: u64,
    /// Write requests serviced.
    pub writes: u64,
    /// Reads serviced by DRAM.
    pub dram_reads: u64,
    /// Writes serviced by DRAM.
    pub dram_writes: u64,
    /// Reads serviced by NVM.
    pub nvm_reads: u64,
    /// Writes serviced by NVM.
    pub nvm_writes: u64,
    /// Bytes written to DRAM.
    pub dram_write_bytes: u64,
    /// Bytes written to NVM by direct CPU traffic.
    pub nvm_write_bytes_cpu: u64,
    /// Bytes written to NVM by checkpointing work.
    pub nvm_write_bytes_ckpt: u64,
    /// Bytes written to NVM by inter-scheme page migration.
    pub nvm_write_bytes_migration: u64,
    /// Bytes read from NVM.
    pub nvm_read_bytes: u64,
    /// Bytes read from DRAM.
    pub dram_read_bytes: u64,
    /// Completed epochs (equivalently, completed checkpoints).
    pub epochs_completed: u64,
    /// Cycles during which the system was performing checkpoint work.
    pub ckpt_busy_cycles: Cycle,
    /// Cycles the *application* was stalled waiting on checkpointing
    /// (blocked stores, stop-the-world pauses, flush stalls).
    pub ckpt_stall_cycles: Cycle,
    /// Total memory-access service cycles accumulated (sum of request
    /// latencies), used for average-latency reporting.
    pub service_cycles: Cycle,
    /// Pages migrated from block remapping to page writeback.
    pub pages_promoted: u64,
    /// Pages migrated from page writeback to block remapping.
    pub pages_demoted: u64,
    /// Crashes injected via the fault-injection hooks.
    pub crashes_injected: u64,
    /// Recoveries that restored `C_last` (the last checkpoint committed).
    pub recoveries_to_clast: u64,
    /// Recoveries that discarded an incomplete checkpoint and restored
    /// `C_penult`.
    pub recoveries_to_cpenult: u64,
    /// Recoveries where both checkpoint images failed authentication and
    /// the system reset to the empty image (secure mode only).
    pub recoveries_unrecoverable: u64,
    /// Queued writes discarded by power loss before their device committed
    /// them.
    pub wq_writes_lost: u64,
    /// Crashes that interrupted a recovery already in progress; each aborts
    /// the current recovery attempt, which restarts from the persisted
    /// commit record. Counted separately from `crashes_injected` so that
    /// `crashes_injected == recoveries_to_clast + recoveries_to_cpenult +
    /// recoveries_unrecoverable` stays an invariant.
    pub nested_crashes: u64,
    /// Total simulated cycles spent in recovery, including attempts that
    /// were themselves interrupted by a nested crash.
    pub recovery_cycles: Cycle,
    /// Media-fault and integrity-protection counters.
    pub media: MediaStats,
    /// DRAM ECC fault-domain counters.
    pub dram: DramStats,
    /// Secure-mode (encryption + integrity tree) counters.
    pub security: SecurityStats,
    /// Graceful-degradation health-ladder counters.
    pub health: HealthStats,
    /// Unified bounded-retry budget accounting.
    pub retry: RetryStats,
    /// Volatile persist-buffer conservation ledger.
    pub wpq: WpqStats,
    /// Simulator fast-path counters (host-performance accounting).
    pub perf: PerfStats,
    /// Per-crash observability records, in injection order.
    pub crash_events: Vec<CrashEvent>,
}

impl MemStats {
    /// Creates an all-zero statistics record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a write of `bytes` reaching NVM, classified per Figure 8.
    pub fn record_nvm_write(&mut self, bytes: u64, class: NvmWriteClass) {
        self.nvm_writes += 1;
        match class {
            NvmWriteClass::Cpu => self.nvm_write_bytes_cpu += bytes,
            NvmWriteClass::Checkpoint => self.nvm_write_bytes_ckpt += bytes,
            NvmWriteClass::Migration => self.nvm_write_bytes_migration += bytes,
        }
    }

    /// Records a write of `bytes` reaching DRAM.
    pub fn record_dram_write(&mut self, bytes: u64) {
        self.dram_writes += 1;
        self.dram_write_bytes += bytes;
    }

    /// Records an injected crash: appends the event and bumps the outcome
    /// counters.
    pub fn record_crash(&mut self, event: CrashEvent) {
        self.crashes_injected += 1;
        match event.outcome {
            RecoveryOutcome::CLast => self.recoveries_to_clast += 1,
            RecoveryOutcome::CPenult | RecoveryOutcome::CPenultIntegrityFallback => {
                self.recoveries_to_cpenult += 1
            }
            RecoveryOutcome::Unrecoverable => self.recoveries_unrecoverable += 1,
        }
        self.crash_events.push(event);
    }

    /// Records a crash that interrupted a running recovery. The aborted
    /// attempt is not a completed recovery, so the per-outcome counters and
    /// `crashes_injected` are left untouched; only `nested_crashes` and the
    /// event log grow.
    pub fn record_nested_crash(&mut self, event: CrashEvent) {
        debug_assert!(event.recovery_step.is_some(), "nested crash must name a recovery step");
        self.nested_crashes += 1;
        self.crash_events.push(event);
    }

    /// Total bytes written to NVM, all classes combined.
    #[must_use]
    pub fn nvm_write_bytes_total(&self) -> u64 {
        self.nvm_write_bytes_cpu + self.nvm_write_bytes_ckpt + self.nvm_write_bytes_migration
    }

    /// Total requests serviced.
    #[must_use]
    pub fn total_accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of `total_cycles` spent on checkpoint work, in percent
    /// (the "% exec. time spent on ckpt." series of Figure 8).
    #[must_use]
    pub fn ckpt_time_share(&self, total_cycles: Cycle) -> f64 {
        if total_cycles == Cycle::ZERO {
            return 0.0;
        }
        100.0 * self.ckpt_busy_cycles.raw() as f64 / total_cycles.raw() as f64
    }

    /// Average NVM write bandwidth over `total_cycles`, in MB/s
    /// (Figure 10; 1 MB = 10^6 bytes as in the paper's axis).
    #[must_use]
    pub fn nvm_write_bandwidth_mbps(&self, total_cycles: Cycle) -> f64 {
        let secs = total_cycles.as_secs();
        if secs == 0.0 {
            return 0.0;
        }
        self.nvm_write_bytes_total() as f64 / 1e6 / secs
    }

    /// Average DRAM write bandwidth over `total_cycles`, in MB/s.
    #[must_use]
    pub fn dram_write_bandwidth_mbps(&self, total_cycles: Cycle) -> f64 {
        let secs = total_cycles.as_secs();
        if secs == 0.0 {
            return 0.0;
        }
        self.dram_write_bytes as f64 / 1e6 / secs
    }

    /// Merges another statistics record into this one (summing all fields).
    pub fn merge(&mut self, other: &MemStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.dram_reads += other.dram_reads;
        self.dram_writes += other.dram_writes;
        self.nvm_reads += other.nvm_reads;
        self.nvm_writes += other.nvm_writes;
        self.dram_write_bytes += other.dram_write_bytes;
        self.nvm_write_bytes_cpu += other.nvm_write_bytes_cpu;
        self.nvm_write_bytes_ckpt += other.nvm_write_bytes_ckpt;
        self.nvm_write_bytes_migration += other.nvm_write_bytes_migration;
        self.nvm_read_bytes += other.nvm_read_bytes;
        self.dram_read_bytes += other.dram_read_bytes;
        self.epochs_completed += other.epochs_completed;
        self.ckpt_busy_cycles += other.ckpt_busy_cycles;
        self.ckpt_stall_cycles += other.ckpt_stall_cycles;
        self.service_cycles += other.service_cycles;
        self.pages_promoted += other.pages_promoted;
        self.pages_demoted += other.pages_demoted;
        self.crashes_injected += other.crashes_injected;
        self.recoveries_to_clast += other.recoveries_to_clast;
        self.recoveries_to_cpenult += other.recoveries_to_cpenult;
        self.recoveries_unrecoverable += other.recoveries_unrecoverable;
        self.wq_writes_lost += other.wq_writes_lost;
        self.nested_crashes += other.nested_crashes;
        self.recovery_cycles += other.recovery_cycles;
        self.media.merge(&other.media);
        self.dram.merge(&other.dram);
        self.security.merge(&other.security);
        self.health.merge(&other.health);
        self.retry.merge(&other.retry);
        self.wpq.merge(&other.wpq);
        self.perf.merge(&other.perf);
        self.crash_events.extend(other.crash_events.iter().cloned());
    }
}

/// Simulator fast-path counters: how often the controller provably skipped
/// fault-model work because the model was *quiet* (zero rates, nothing
/// armed, nothing stuck or poisoned).
///
/// These counters account for the hot-path flattening itself — they let
/// the `simspeed` harness and tests verify the fast paths actually fire
/// (a silent fast path that never triggers is dead weight, and one that
/// fires when the model is armed would corrupt fault schedules). They are
/// host-performance accounting only; no simulated time or fault decision
/// depends on them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerfStats {
    /// NVM data reads that skipped the media fault model because it was
    /// quiet; each skip saved a seeded-stream consultation and a stuck-cell
    /// range probe.
    pub nvm_quiet_reads: u64,
    /// DRAM working-region reads that skipped the SEC-DED ECC check
    /// because the model was quiet.
    pub dram_quiet_reads: u64,
}

impl PerfStats {
    /// Merges another record into this one (summing all fields).
    pub fn merge(&mut self, other: &PerfStats) {
        self.nvm_quiet_reads += other.nvm_quiet_reads;
        self.dram_quiet_reads += other.dram_quiet_reads;
    }
}

impl fmt::Display for MemStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads={} writes={} nvm_wr_bytes(cpu/ckpt/migr)={}/{}/{} dram_wr_bytes={} epochs={} ckpt_busy={} stalls={}",
            self.reads,
            self.writes,
            self.nvm_write_bytes_cpu,
            self.nvm_write_bytes_ckpt,
            self.nvm_write_bytes_migration,
            self.dram_write_bytes,
            self.epochs_completed,
            self.ckpt_busy_cycles,
            self.ckpt_stall_cycles,
        )?;
        if self.crashes_injected > 0 || self.nested_crashes > 0 {
            write!(
                f,
                " crashes={} (C_last={} C_penult={} unrecoverable={} nested={} wq_lost={} recovery_cycles={})",
                self.crashes_injected,
                self.recoveries_to_clast,
                self.recoveries_to_cpenult,
                self.recoveries_unrecoverable,
                self.nested_crashes,
                self.wq_writes_lost,
                self.recovery_cycles,
            )?;
        }
        if self.media.any() {
            write!(
                f,
                " media(flip={} stuck={} torn={} meta={} retries={} remaps={} scrubbed={} fallbacks={} spare_exhausted={} wal={}+{})",
                self.media.bit_flips,
                self.media.stuck_faults,
                self.media.torn_writes,
                self.media.meta_corruptions,
                self.media.retries,
                self.media.remaps,
                self.media.scrub_repairs,
                self.media.integrity_fallbacks,
                self.media.spare_exhausted,
                self.media.wal_seals,
                self.media.wal_redos,
            )?;
        }
        if self.security.any() {
            write!(
                f,
                " security(enc={} ver={} ctr_persists={} ctr_bytes={} tree={}+{}B roots={} replayed={} tampers={}/{} class(t/t/m)={}/{}/{} fallbacks={} unrecoverable={})",
                self.security.blocks_encrypted,
                self.security.blocks_verified,
                self.security.counter_persists,
                self.security.counter_bytes,
                self.security.tree_node_persists,
                self.security.tree_bytes,
                self.security.root_persists,
                self.security.counters_replayed,
                self.security.tampers_detected,
                self.security.tampers_injected,
                self.security.classified_tamper,
                self.security.classified_torn,
                self.security.classified_media,
                self.security.verify_fallbacks,
                self.security.unrecoverable,
            )?;
        }
        if self.health.any() {
            write!(
                f,
                " health(evals={} demotions={} promotions={} rejected={} emergency={} scrub_deferrals={} persists={} rehydrations={})",
                self.health.evaluations,
                self.health.demotions,
                self.health.promotions,
                self.health.stores_rejected,
                self.health.emergency_checkpoints,
                self.health.scrub_deferrals,
                self.health.rung_persists,
                self.health.rehydrations,
            )?;
        }
        if self.retry.any() {
            write!(
                f,
                " retry(media={} recovery={} dram={})",
                self.retry.media_attempts,
                self.retry.recovery_attempts,
                self.retry.dram_attempts,
            )?;
        }
        if self.wpq.any() {
            write!(
                f,
                " wpq(enq={} drained={} dropped={} outstanding={} fences={} stall={} window={})",
                self.wpq.enqueued,
                self.wpq.drained,
                self.wpq.dropped_at_crash,
                self.wpq.outstanding(),
                self.wpq.fences,
                self.wpq.fence_stall_cycles,
                self.wpq.reorder_window_max,
            )?;
        }
        if self.dram.any() {
            write!(
                f,
                " dram(corrected={} poisoned={} refetched={} retries={} dropped={} overwritten={} crash_cleared={} quarantines={} lost_bytes={})",
                self.dram.corrected_flips,
                self.dram.poisoned_blocks,
                self.dram.poison_refetched,
                self.dram.refetch_retries,
                self.dram.poison_dropped,
                self.dram.poison_overwritten,
                self.dram.poison_cleared_by_crash,
                self.dram.quarantined_pages,
                self.dram.quarantine_dropped_bytes,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_total() {
        let mut s = MemStats::new();
        s.record_nvm_write(64, NvmWriteClass::Cpu);
        s.record_nvm_write(4096, NvmWriteClass::Checkpoint);
        s.record_nvm_write(4096, NvmWriteClass::Migration);
        assert_eq!(s.nvm_writes, 3);
        assert_eq!(s.nvm_write_bytes_total(), 64 + 4096 + 4096);
        assert_eq!(s.nvm_write_bytes_cpu, 64);
        assert_eq!(s.nvm_write_bytes_ckpt, 4096);
        assert_eq!(s.nvm_write_bytes_migration, 4096);
    }

    #[test]
    fn dram_write_recording() {
        let mut s = MemStats::new();
        s.record_dram_write(64);
        s.record_dram_write(64);
        assert_eq!(s.dram_writes, 2);
        assert_eq!(s.dram_write_bytes, 128);
    }

    #[test]
    fn ckpt_time_share_percentage() {
        let mut s = MemStats::new();
        s.ckpt_busy_cycles = Cycle::new(250);
        assert!((s.ckpt_time_share(Cycle::new(1000)) - 25.0).abs() < 1e-9);
        // Zero total time must not divide by zero.
        assert_eq!(s.ckpt_time_share(Cycle::ZERO), 0.0);
    }

    #[test]
    fn bandwidth_mbps() {
        let mut s = MemStats::new();
        // 3e9 cycles = 1 s at 3 GHz; 100 MB written -> 100 MB/s.
        s.record_nvm_write(100_000_000, NvmWriteClass::Cpu);
        let bw = s.nvm_write_bandwidth_mbps(Cycle::new(3_000_000_000));
        assert!((bw - 100.0).abs() < 1e-6, "bw={bw}");
        assert_eq!(s.nvm_write_bandwidth_mbps(Cycle::ZERO), 0.0);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = MemStats::new();
        a.reads = 1;
        a.ckpt_stall_cycles = Cycle::new(10);
        a.pages_promoted = 2;
        let mut b = MemStats::new();
        b.reads = 2;
        b.ckpt_stall_cycles = Cycle::new(5);
        b.pages_demoted = 1;
        a.merge(&b);
        assert_eq!(a.reads, 3);
        assert_eq!(a.ckpt_stall_cycles, Cycle::new(15));
        assert_eq!(a.pages_promoted, 2);
        assert_eq!(a.pages_demoted, 1);
    }

    #[test]
    fn total_accesses() {
        let mut s = MemStats::new();
        s.reads = 7;
        s.writes = 3;
        assert_eq!(s.total_accesses(), 10);
    }

    #[test]
    fn display_nonempty() {
        assert!(!MemStats::new().to_string().is_empty());
        assert_eq!(NvmWriteClass::Cpu.to_string(), "cpu");
        assert_eq!(NvmWriteClass::Checkpoint.to_string(), "checkpoint");
        assert_eq!(NvmWriteClass::Migration.to_string(), "migration");
        assert_eq!(CkptPhase::PageWriteback.to_string(), "page-writeback");
        assert_eq!(RecoveryOutcome::CPenult.to_string(), "C_penult");
    }

    fn crash_event(cycle: u64, outcome: RecoveryOutcome) -> CrashEvent {
        CrashEvent {
            cycle: Cycle::new(cycle),
            epoch: 3,
            phase: CkptPhase::PersistBtt,
            inflight_writebacks: 2,
            outcome,
            recovery_step: None,
        }
    }

    #[test]
    fn record_crash_bumps_outcome_counters() {
        let mut s = MemStats::new();
        s.record_crash(crash_event(100, RecoveryOutcome::CLast));
        s.record_crash(crash_event(200, RecoveryOutcome::CPenult));
        s.record_crash(crash_event(300, RecoveryOutcome::CPenult));
        assert_eq!(s.crashes_injected, 3);
        assert_eq!(s.recoveries_to_clast, 1);
        assert_eq!(s.recoveries_to_cpenult, 2);
        assert_eq!(s.crash_events.len(), 3);
        assert_eq!(s.crash_events[1].cycle, Cycle::new(200));
        assert!(s.to_string().contains("crashes=3"));
    }

    #[test]
    fn merge_concatenates_crash_events() {
        let mut a = MemStats::new();
        a.record_crash(crash_event(1, RecoveryOutcome::CLast));
        let mut b = MemStats::new();
        b.record_crash(crash_event(2, RecoveryOutcome::CPenult));
        b.wq_writes_lost = 5;
        a.merge(&b);
        assert_eq!(a.crashes_injected, 2);
        assert_eq!(a.crash_events.len(), 2);
        assert_eq!(a.wq_writes_lost, 5);
    }

    #[test]
    fn fault_kind_display() {
        assert_eq!(FaultKind::BitFlip.to_string(), "bit-flip");
        assert_eq!(FaultKind::StuckAt.to_string(), "stuck-at");
        assert_eq!(FaultKind::TornWrite.to_string(), "torn-write");
        assert_eq!(FaultKind::Metadata.to_string(), "metadata");
        assert_eq!(
            RecoveryOutcome::CPenultIntegrityFallback.to_string(),
            "C_penult (integrity)"
        );
    }

    #[test]
    fn media_stats_record_and_merge() {
        let mut m = MediaStats::default();
        assert!(!m.any());
        m.record_fault(FaultKind::BitFlip);
        m.record_fault(FaultKind::StuckAt);
        m.record_fault(FaultKind::TornWrite);
        m.record_fault(FaultKind::Metadata);
        m.retries = 3;
        assert_eq!(m.total_faults(), 4);
        assert!(m.any());

        let mut other = MediaStats::default();
        other.record_fault(FaultKind::BitFlip);
        other.remaps = 2;
        other.crc_check_cycles = Cycle::new(10);
        m.merge(&other);
        assert_eq!(m.bit_flips, 2);
        assert_eq!(m.remaps, 2);
        assert_eq!(m.crc_check_cycles, Cycle::new(10));
    }

    #[test]
    fn nested_crash_counts_separately_from_injected() {
        let mut s = MemStats::new();
        s.record_crash(crash_event(100, RecoveryOutcome::CLast));
        let mut nested = crash_event(150, RecoveryOutcome::CLast);
        nested.recovery_step = Some(RecoveryStep::RearmWorkingSet);
        s.record_nested_crash(nested);
        assert_eq!(s.crashes_injected, 1);
        assert_eq!(s.nested_crashes, 1);
        assert_eq!(s.recoveries_to_clast, 1, "aborted attempt is not a completed recovery");
        assert_eq!(s.crash_events.len(), 2);
        assert_eq!(
            s.crash_events[1].recovery_step,
            Some(RecoveryStep::RearmWorkingSet)
        );
        assert!(s.to_string().contains("nested=1"));
    }

    #[test]
    fn merge_sums_nested_and_recovery_cycles() {
        let mut a = MemStats::new();
        a.nested_crashes = 2;
        a.recovery_cycles = Cycle::new(100);
        let mut b = MemStats::new();
        b.nested_crashes = 3;
        b.recovery_cycles = Cycle::new(50);
        a.merge(&b);
        assert_eq!(a.nested_crashes, 5);
        assert_eq!(a.recovery_cycles, Cycle::new(150));
    }

    #[test]
    fn recovery_step_display() {
        assert_eq!(RecoveryStep::ReadCommitRecord.to_string(), "read-commit-record");
        assert_eq!(RecoveryStep::VerifyClast.to_string(), "verify-clast");
        assert_eq!(RecoveryStep::IntegrityFallback.to_string(), "integrity-fallback");
        assert_eq!(RecoveryStep::ReplayMetadata.to_string(), "replay-metadata");
        assert_eq!(RecoveryStep::RearmWorkingSet.to_string(), "rearm-working-set");
    }

    #[test]
    fn wal_and_spare_counters_merge_and_show() {
        let mut m = MediaStats::default();
        assert!(!m.any());
        m.spare_exhausted = 1;
        assert!(m.any(), "spare exhaustion alone is media activity");
        let other = MediaStats { wal_seals: 4, wal_redos: 2, ..Default::default() };
        assert!(other.any());
        m.merge(&other);
        assert_eq!((m.spare_exhausted, m.wal_seals, m.wal_redos), (1, 4, 2));
        let mut s = MemStats::new();
        s.media = m;
        let text = s.to_string();
        assert!(text.contains("spare_exhausted=1"), "text={text}");
        assert!(text.contains("wal=4+2"), "text={text}");
    }

    #[test]
    fn integrity_fallback_counts_as_cpenult_recovery() {
        let mut s = MemStats::new();
        s.record_crash(crash_event(10, RecoveryOutcome::CPenultIntegrityFallback));
        assert_eq!(s.recoveries_to_cpenult, 1);
        assert_eq!(s.recoveries_to_clast, 0);
    }

    #[test]
    fn display_includes_media_section_when_active() {
        let mut s = MemStats::new();
        assert!(!s.to_string().contains("media("));
        s.media.record_fault(FaultKind::StuckAt);
        s.media.remaps = 1;
        let text = s.to_string();
        assert!(text.contains("media("), "text={text}");
        assert!(text.contains("stuck=1"), "text={text}");
    }

    #[test]
    fn dram_stats_conserve_merge_and_show() {
        let mut d = DramStats::default();
        assert!(!d.any());
        d.corrected_flips = 5;
        d.poisoned_blocks = 4;
        d.poison_refetched = 1;
        d.refetch_retries = 2;
        d.poison_dropped = 1;
        d.poison_overwritten = 1;
        d.poison_cleared_by_crash = 1;
        d.quarantined_pages = 1;
        d.quarantine_dropped_bytes = 4096;
        assert!(d.any());
        // All four fates accounted: no poison outstanding.
        assert_eq!(d.poison_accounted(), d.poisoned_blocks);

        let mut a = MemStats::new();
        a.dram.merge(&d);
        let mut b = MemStats::new();
        b.dram.merge(&d);
        a.merge(&b);
        assert_eq!(a.dram.corrected_flips, 10);
        assert_eq!(a.dram.poisoned_blocks, 8);
        assert_eq!(a.dram.poison_refetched, 2);
        assert_eq!(a.dram.refetch_retries, 4);
        assert_eq!(a.dram.poison_dropped, 2);
        assert_eq!(a.dram.poison_overwritten, 2);
        assert_eq!(a.dram.poison_cleared_by_crash, 2);
        assert_eq!(a.dram.quarantined_pages, 2);
        assert_eq!(a.dram.quarantine_dropped_bytes, 8192);

        let text = a.to_string();
        assert!(text.contains("dram("), "text={text}");
        assert!(text.contains("quarantines=2"), "text={text}");
        assert!(!MemStats::new().to_string().contains("dram("));
    }

    #[test]
    fn unrecoverable_outcome_counts_separately() {
        let mut s = MemStats::new();
        s.record_crash(crash_event(10, RecoveryOutcome::Unrecoverable));
        s.record_crash(crash_event(20, RecoveryOutcome::CLast));
        assert_eq!(s.crashes_injected, 2);
        assert_eq!(s.recoveries_unrecoverable, 1);
        assert_eq!(s.recoveries_to_clast, 1);
        assert_eq!(s.recoveries_to_cpenult, 0);
        assert_eq!(
            s.crashes_injected,
            s.recoveries_to_clast + s.recoveries_to_cpenult + s.recoveries_unrecoverable
        );
        assert!(s.to_string().contains("unrecoverable=1"));
        assert_eq!(RecoveryOutcome::Unrecoverable.to_string(), "unrecoverable");
        assert_eq!(RecoveryStep::VerifyMacs.to_string(), "verify-macs");

        let mut b = MemStats::new();
        b.record_crash(crash_event(30, RecoveryOutcome::Unrecoverable));
        s.merge(&b);
        assert_eq!(s.recoveries_unrecoverable, 2);
    }

    #[test]
    fn security_stats_conserve_merge_and_show() {
        let mut c = SecurityStats::default();
        assert!(!c.any());
        c.blocks_encrypted = 10;
        c.blocks_verified = 8;
        c.counter_persists = 3;
        c.counter_bytes = 24;
        c.tree_node_persists = 5;
        c.tree_bytes = 320;
        c.root_persists = 3;
        c.counters_replayed = 2;
        c.crypto_cycles = Cycle::new(400);
        c.tampers_injected = 3;
        c.tampers_detected = 2;
        c.classified_tamper = 1;
        c.classified_torn = 1;
        c.classified_media = 0;
        c.verify_fallbacks = 1;
        c.unrecoverable = 1;
        assert!(c.any());
        // Conservation: every detection classified once and resolved once.
        assert_eq!(c.classified_total(), c.tampers_detected);
        assert_eq!(c.detections_accounted(), c.tampers_detected);
        assert!(c.tampers_injected >= c.tampers_detected);

        let mut a = MemStats::new();
        a.security.merge(&c);
        let mut b = MemStats::new();
        b.security.merge(&c);
        a.merge(&b);
        assert_eq!(a.security.blocks_encrypted, 20);
        assert_eq!(a.security.blocks_verified, 16);
        assert_eq!(a.security.counter_persists, 6);
        assert_eq!(a.security.counter_bytes, 48);
        assert_eq!(a.security.tree_node_persists, 10);
        assert_eq!(a.security.tree_bytes, 640);
        assert_eq!(a.security.root_persists, 6);
        assert_eq!(a.security.counters_replayed, 4);
        assert_eq!(a.security.crypto_cycles, Cycle::new(800));
        assert_eq!(a.security.tampers_injected, 6);
        assert_eq!(a.security.tampers_detected, 4);
        assert_eq!(a.security.classified_tamper, 2);
        assert_eq!(a.security.classified_torn, 2);
        assert_eq!(a.security.classified_media, 0);
        assert_eq!(a.security.verify_fallbacks, 2);
        assert_eq!(a.security.unrecoverable, 2);
        // Conservation survives the merge.
        assert_eq!(a.security.classified_total(), a.security.tampers_detected);
        assert_eq!(a.security.detections_accounted(), a.security.tampers_detected);

        let text = a.to_string();
        assert!(text.contains("security("), "text={text}");
        assert!(text.contains("tampers=4/6"), "text={text}");
        assert!(!MemStats::new().to_string().contains("security("));
    }

    #[test]
    fn health_rung_ladder_is_ordered_and_displays() {
        assert!(HealthRung::Healthy < HealthRung::Wounded);
        assert!(HealthRung::Wounded < HealthRung::ReadOnly);
        assert!(HealthRung::ReadOnly < HealthRung::FailSafe);
        assert_eq!(HealthRung::default(), HealthRung::Healthy);
        assert_eq!(HealthRung::Healthy.to_string(), "healthy");
        assert_eq!(HealthRung::Wounded.to_string(), "wounded");
        assert_eq!(HealthRung::ReadOnly.to_string(), "read-only");
        assert_eq!(HealthRung::FailSafe.to_string(), "fail-safe");
    }

    #[test]
    fn health_stats_conserve_merge_and_show() {
        let mut h = HealthStats::default();
        assert!(!h.any());
        h.evaluations = 10;
        h.demotions = 3;
        h.promotions = 2;
        h.stores_rejected = 5;
        h.emergency_checkpoints = 4;
        h.scrub_deferrals = 1;
        h.rung_persists = 10;
        h.rehydrations = 2;
        assert!(h.any());
        // Ladder conservation: promotion only climbs back what a demotion
        // descended.
        assert!(h.promotions <= h.demotions);

        let mut a = MemStats::new();
        a.health.merge(&h);
        let mut b = MemStats::new();
        b.health.merge(&h);
        a.merge(&b);
        assert_eq!(a.health.evaluations, 20);
        assert_eq!(a.health.demotions, 6);
        assert_eq!(a.health.promotions, 4);
        assert_eq!(a.health.stores_rejected, 10);
        assert_eq!(a.health.emergency_checkpoints, 8);
        assert_eq!(a.health.scrub_deferrals, 2);
        assert_eq!(a.health.rung_persists, 20);
        assert_eq!(a.health.rehydrations, 4);
        assert!(a.health.promotions <= a.health.demotions);

        let text = a.to_string();
        assert!(text.contains("health("), "text={text}");
        assert!(text.contains("rejected=10"), "text={text}");
        assert!(!MemStats::new().to_string().contains("health("));
    }

    #[test]
    fn retry_stats_conserve_merge_and_show() {
        let mut r = RetryStats::default();
        assert!(!r.any());
        r.media_attempts = 4;
        r.recovery_attempts = 2;
        r.dram_attempts = 3;
        assert!(r.any());
        assert_eq!(r.attempts_total(), 9);

        let mut a = MemStats::new();
        a.retry.merge(&r);
        let mut b = MemStats::new();
        b.retry.merge(&r);
        a.merge(&b);
        assert_eq!(a.retry.media_attempts, 8);
        assert_eq!(a.retry.recovery_attempts, 4);
        assert_eq!(a.retry.dram_attempts, 6);
        assert_eq!(a.retry.attempts_total(), 18);

        let text = a.to_string();
        assert!(text.contains("retry(media=8 recovery=4 dram=6)"), "text={text}");
        assert!(!MemStats::new().to_string().contains("retry("));
    }

    #[test]
    fn wpq_stats_conserve_merge_and_show() {
        let mut w = WpqStats::default();
        assert!(!w.any());
        w.enqueued = 10;
        w.drained = 6;
        w.dropped_at_crash = 3;
        w.fences = 2;
        w.fence_stall_cycles = Cycle::new(40);
        w.reorder_window_max = 5;
        assert!(w.any());
        // Conservation: enqueued == drained + dropped_at_crash + outstanding.
        assert_eq!(w.outstanding(), 1);
        assert_eq!(w.enqueued, w.drained + w.dropped_at_crash + w.outstanding());

        let mut a = MemStats::new();
        a.wpq.merge(&w);
        let mut b = MemStats::new();
        b.wpq.merge(&w);
        b.wpq.reorder_window_max = 9;
        a.merge(&b);
        assert_eq!(a.wpq.enqueued, 20);
        assert_eq!(a.wpq.drained, 12);
        assert_eq!(a.wpq.dropped_at_crash, 6);
        assert_eq!(a.wpq.fences, 4);
        assert_eq!(a.wpq.fence_stall_cycles, Cycle::new(80));
        // The window is a high-water mark: merge takes the max, not the sum.
        assert_eq!(a.wpq.reorder_window_max, 9);
        assert_eq!(a.wpq.outstanding(), 2);

        let text = a.to_string();
        assert!(text.contains("wpq(enq=20 drained=12 dropped=6 outstanding=2"), "text={text}");
        assert!(text.contains("fences=4"), "text={text}");
        assert!(!MemStats::new().to_string().contains("wpq("));
    }

    #[test]
    fn media_stats_merge_via_memstats() {
        let mut a = MemStats::new();
        a.media.scrub_repairs = 1;
        let mut b = MemStats::new();
        b.media.scrub_repairs = 2;
        b.media.integrity_fallbacks = 1;
        b.media.silent_corruptions = 4;
        b.media.crc_checked_blocks = 8;
        a.merge(&b);
        assert_eq!(a.media.scrub_repairs, 3);
        assert_eq!(a.media.integrity_fallbacks, 1);
        assert_eq!(a.media.silent_corruptions, 4);
        assert_eq!(a.media.crc_checked_blocks, 8);
    }
}
