//! Strongly-typed addresses and granularity indices.
//!
//! ThyNVM manages data at two granularities simultaneously (§2.3 of the
//! paper): 64 B *cache blocks* tracked by the BTT and 4 KiB *pages* tracked
//! by the PTT. Two distinct address spaces exist (§4.1):
//!
//! * the **physical address space** ([`PhysAddr`]) visible to software
//!   through the OS, and
//! * the larger **hardware address space** ([`HwAddr`]) visible only to the
//!   memory controller, which holds the Home Region, the two Checkpoint
//!   Regions, the Working Data Region and the BTT/PTT/CPU backup region.
//!
//! Newtypes keep the two from being confused at compile time.

use std::fmt;

/// Size of a cache block in bytes (64 B, Table 2).
pub const BLOCK_BYTES: u64 = 64;
/// Size of a page in bytes (4 KiB).
pub const PAGE_BYTES: u64 = 4096;
/// Number of cache blocks per page.
pub const BLOCKS_PER_PAGE: u64 = PAGE_BYTES / BLOCK_BYTES;

/// A software-visible physical address, as produced by the CPU after virtual
/// address translation.
///
/// # Example
///
/// ```
/// use thynvm_types::PhysAddr;
/// let a = PhysAddr::new(0x1fc0);
/// assert_eq!(a.block_offset(), 0);       // block-aligned
/// assert_eq!(a.page_offset(), 0xfc0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from a raw byte address.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The cache block containing this address.
    pub const fn block(self) -> BlockIndex {
        BlockIndex(self.0 / BLOCK_BYTES)
    }

    /// The page containing this address.
    pub const fn page(self) -> PageIndex {
        PageIndex(self.0 / PAGE_BYTES)
    }

    /// Byte offset of this address within its cache block.
    pub const fn block_offset(self) -> u64 {
        self.0 % BLOCK_BYTES
    }

    /// Byte offset of this address within its page.
    pub const fn page_offset(self) -> u64 {
        self.0 % PAGE_BYTES
    }

    /// Returns the address advanced by `bytes`.
    #[must_use]
    pub const fn offset(self, bytes: u64) -> Self {
        Self(self.0 + bytes)
    }

    /// Returns this address aligned down to its block boundary.
    #[must_use]
    pub const fn block_aligned(self) -> Self {
        Self(self.0 & !(BLOCK_BYTES - 1))
    }

    /// Returns this address aligned down to its page boundary.
    #[must_use]
    pub const fn page_aligned(self) -> Self {
        Self(self.0 & !(PAGE_BYTES - 1))
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p:{:#x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for PhysAddr {
    fn from(raw: u64) -> Self {
        Self::new(raw)
    }
}

/// A hardware address inside the memory controller's private address space
/// (§4.1). Only the controller ever sees these; software cannot name them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct HwAddr(u64);

impl HwAddr {
    /// Creates a hardware address from a raw byte address.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the address advanced by `bytes`.
    #[must_use]
    pub const fn offset(self, bytes: u64) -> Self {
        Self(self.0 + bytes)
    }
}

impl fmt::Display for HwAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h:{:#x}", self.0)
    }
}

impl fmt::LowerHex for HwAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for HwAddr {
    fn from(raw: u64) -> Self {
        Self::new(raw)
    }
}

/// Index of a 64 B cache block in the physical address space — the unit the
/// Block Translation Table (BTT) tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockIndex(u64);

impl BlockIndex {
    /// Creates a block index from a raw index (not a byte address).
    pub const fn new(index: u64) -> Self {
        Self(index)
    }

    /// Returns the raw block index.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The first byte address of this block.
    pub const fn byte_offset(self) -> u64 {
        self.0 * BLOCK_BYTES
    }

    /// The base physical address of this block.
    pub const fn base_addr(self) -> PhysAddr {
        PhysAddr::new(self.byte_offset())
    }

    /// The page containing this block.
    pub const fn page(self) -> PageIndex {
        PageIndex(self.0 / BLOCKS_PER_PAGE)
    }

    /// This block's position within its page (0..64).
    pub const fn slot_in_page(self) -> u64 {
        self.0 % BLOCKS_PER_PAGE
    }
}

impl fmt::Display for BlockIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk#{}", self.0)
    }
}

/// Index of a 4 KiB page in the physical address space — the unit the Page
/// Translation Table (PTT) tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageIndex(u64);

impl PageIndex {
    /// Creates a page index from a raw index (not a byte address).
    pub const fn new(index: u64) -> Self {
        Self(index)
    }

    /// Returns the raw page index.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The first byte address of this page.
    pub const fn byte_offset(self) -> u64 {
        self.0 * PAGE_BYTES
    }

    /// The base physical address of this page.
    pub const fn base_addr(self) -> PhysAddr {
        PhysAddr::new(self.byte_offset())
    }

    /// The first block of this page.
    pub const fn first_block(self) -> BlockIndex {
        BlockIndex(self.0 * BLOCKS_PER_PAGE)
    }

    /// The `slot`-th block of this page.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= BLOCKS_PER_PAGE`.
    pub fn block(self, slot: u64) -> BlockIndex {
        assert!(slot < BLOCKS_PER_PAGE, "block slot {slot} out of page range");
        BlockIndex(self.0 * BLOCKS_PER_PAGE + slot)
    }

    /// Iterates over all blocks of this page.
    pub fn blocks(self) -> impl Iterator<Item = BlockIndex> {
        let first = self.0 * BLOCKS_PER_PAGE;
        (first..first + BLOCKS_PER_PAGE).map(BlockIndex)
    }
}

impl fmt::Display for PageIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pg#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_and_page_of_address() {
        let a = PhysAddr::new(3 * PAGE_BYTES + 5 * BLOCK_BYTES + 7);
        assert_eq!(a.page(), PageIndex::new(3));
        assert_eq!(a.block(), BlockIndex::new(3 * BLOCKS_PER_PAGE + 5));
        assert_eq!(a.block_offset(), 7);
        assert_eq!(a.page_offset(), 5 * BLOCK_BYTES + 7);
    }

    #[test]
    fn alignment_helpers() {
        let a = PhysAddr::new(0x1fff);
        assert_eq!(a.block_aligned().raw(), 0x1fc0);
        assert_eq!(a.page_aligned().raw(), 0x1000);
        // Aligned addresses are fixed points.
        assert_eq!(a.page_aligned().page_aligned(), a.page_aligned());
    }

    #[test]
    fn block_page_roundtrip() {
        let p = PageIndex::new(42);
        for (i, b) in p.blocks().enumerate() {
            assert_eq!(b.page(), p);
            assert_eq!(b.slot_in_page(), i as u64);
        }
        assert_eq!(p.blocks().count() as u64, BLOCKS_PER_PAGE);
    }

    #[test]
    fn block_slot_accessor() {
        let p = PageIndex::new(7);
        assert_eq!(p.block(0), p.first_block());
        assert_eq!(p.block(63).slot_in_page(), 63);
        assert_eq!(p.block(63).page(), p);
    }

    #[test]
    #[should_panic(expected = "out of page range")]
    fn block_slot_out_of_range_panics() {
        PageIndex::new(0).block(64);
    }

    #[test]
    fn offsets_compose() {
        let a = PhysAddr::new(100).offset(28);
        assert_eq!(a.raw(), 128);
        let h = HwAddr::new(0x10).offset(0x10);
        assert_eq!(h.raw(), 0x20);
    }

    #[test]
    fn display_formats_are_nonempty_and_distinct() {
        assert_eq!(PhysAddr::new(16).to_string(), "p:0x10");
        assert_eq!(HwAddr::new(16).to_string(), "h:0x10");
        assert_eq!(BlockIndex::new(2).to_string(), "blk#2");
        assert_eq!(PageIndex::new(2).to_string(), "pg#2");
    }

    #[test]
    fn base_addr_of_indices() {
        assert_eq!(BlockIndex::new(2).base_addr().raw(), 128);
        assert_eq!(PageIndex::new(2).base_addr().raw(), 8192);
        assert_eq!(PageIndex::new(1).first_block(), BlockIndex::new(64));
    }

    #[test]
    fn from_u64_conversions() {
        assert_eq!(PhysAddr::from(5u64), PhysAddr::new(5));
        assert_eq!(HwAddr::from(5u64), HwAddr::new(5));
    }

    #[test]
    fn hex_formatting() {
        assert_eq!(format!("{:x}", PhysAddr::new(255)), "ff");
        assert_eq!(format!("{:#x}", HwAddr::new(255)), "0xff");
    }
}
