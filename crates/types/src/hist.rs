//! Power-of-two histogram for latency/length distributions.
//!
//! The simulator records distributions (epoch lengths, checkpoint
//! durations, stall times) in logarithmic buckets: bucket *k* counts
//! samples in `[2^k, 2^(k+1))`, with bucket 0 also holding zero.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Number of buckets: covers the full `u64` range.
const BUCKETS: usize = 64;

/// A power-of-two bucketed histogram of `u64` samples.
///
/// # Example
///
/// ```
/// use thynvm_types::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(1);
/// h.record(1000);
/// h.record(1024);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.max(), 1024);
/// assert!(h.mean() > 600.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self { buckets: vec![0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = if value == 0 { 0 } else { 63 - u64::leading_zeros(value) as usize };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate `q`-quantile (0 ≤ q ≤ 1) from the bucket boundaries:
    /// returns the upper bound of the bucket containing the quantile.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                return if k >= 63 { u64::MAX } else { (1u64 << (k + 1)) - 1 };
            }
        }
        self.max
    }

    /// Iterates over `(bucket lower bound, count)` pairs for non-empty
    /// buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(k, &n)| (if k == 0 { 0 } else { 1u64 << k }, n))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Renders a compact ASCII bar chart of the distribution.
    pub fn render(&self, width: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (lo, n) in self.iter() {
            let bar = (n as usize * width).div_ceil(peak as usize);
            let _ = writeln!(out, "{lo:>12} │{} {n}", "█".repeat(bar));
        }
        out
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={} mean={:.1} p50={} p99={} max={}",
            self.count,
            self.min(),
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.iter().count(), 0);
    }

    #[test]
    fn basic_stats() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 110);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 22.0).abs() < 1e-9);
    }

    #[test]
    fn zero_goes_to_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        let buckets: Vec<_> = h.iter().collect();
        assert_eq!(buckets, vec![(0, 2)]); // 0 and 1 share bucket 0
    }

    #[test]
    fn bucket_boundaries() {
        let mut h = Histogram::new();
        h.record(1023); // bucket 9: [512, 1024)
        h.record(1024); // bucket 10: [1024, 2048)
        let buckets: Vec<_> = h.iter().collect();
        assert_eq!(buckets, vec![(512, 1), (1024, 1)]);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = Histogram::new();
        for v in 1..1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p90 = h.quantile(0.9);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p50 >= 256, "median of 1..1000 in the 512-bucket: {p50}");
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        a.record(10);
        let mut b = Histogram::new();
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1000);
        // Merging an empty histogram changes nothing.
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);
    }

    #[test]
    fn render_and_display() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(5);
        h.record(700);
        let chart = h.render(20);
        assert!(chart.contains('█'));
        assert!(chart.lines().count() == 2);
        assert!(h.to_string().contains("n=3"));
    }

    #[test]
    fn huge_values() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }
}
