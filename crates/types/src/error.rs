//! Error handling for the ThyNVM workspace.

use std::fmt;

use crate::addr::PhysAddr;
use crate::stats::{FaultKind, HealthRung};

/// Convenient result alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the simulator crates.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// An access fell outside the configured physical address space.
    AddressOutOfRange {
        /// The offending address.
        addr: PhysAddr,
        /// Size of the configured physical address space in bytes.
        limit: u64,
    },
    /// A translation table (BTT or PTT) has no free or reclaimable entry and
    /// the controller could not recover by starting a new epoch.
    TableFull {
        /// Which table overflowed ("BTT" or "PTT").
        table: &'static str,
    },
    /// Recovery was attempted but no completed checkpoint exists.
    NoCheckpoint,
    /// A configuration value is invalid.
    InvalidConfig {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A read returned data that failed its integrity check: the media
    /// corrupted it.
    MediaCorruption {
        /// Physical address of the corrupted data.
        addr: PhysAddr,
        /// What kind of media fault corrupted it.
        kind: FaultKind,
    },
    /// Bounded read retries were exhausted without obtaining data that
    /// passes its integrity check (the location is permanently bad).
    RetriesExhausted {
        /// Physical address of the unreadable data.
        addr: PhysAddr,
        /// How many retries were attempted before giving up.
        attempts: u32,
    },
    /// A bad block needed remapping but every spare block is already in
    /// use. The block is still served — each read pays bounded CRC retries
    /// — but the device can no longer heal itself.
    SpareExhausted {
        /// Physical address of the block that could not be remapped.
        addr: PhysAddr,
    },
    /// Integrity verification failed on *both* checkpoint images: neither
    /// `C_last` nor `C_penult` authenticates against its stored MAC, so no
    /// trusted state exists to replay. Recovery refuses to deliver
    /// unauthenticated data and resets to the empty (provably
    /// uncorrupted) image instead.
    IntegrityUnrecoverable {
        /// Epoch of the newest (rejected) checkpoint.
        epoch: u64,
    },
    /// The health ladder degraded the controller to a rung that rejects
    /// new stores (`ReadOnly` or `FailSafe`): durability of fresh data can
    /// no longer be guaranteed, so the store was refused instead of
    /// silently accepted. Loads are still served (CRC/MAC-verified).
    Degraded {
        /// The ladder rung the controller is currently at.
        rung: HealthRung,
    },
    /// A commit-record persist was issued while the volatile persist
    /// buffer still held non-commit entries: the §4.4 ordering fence was
    /// skipped, so a crash could make the commit record durable before the
    /// data it commits. Caught by the controller's ordering audit and
    /// surfaced via `take_ordering_error` rather than silently tolerated.
    UnfencedCommit {
        /// Physical address of the commit record.
        addr: PhysAddr,
        /// Non-commit entries still pending in the buffer at the persist.
        pending: usize,
    },
    /// An uncorrectable DRAM error poisoned dirty working data: the
    /// affected range was quarantined — its writes were dropped and the
    /// contents rolled back to the last checkpoint — instead of letting the
    /// poison reach NVM and become durable corruption.
    DramPoisonLost {
        /// Physical base address of the quarantined range.
        addr: PhysAddr,
        /// Bytes rolled back to their checkpointed contents.
        bytes: u64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::AddressOutOfRange { addr, limit } => {
                write!(f, "address {addr} outside physical space of {limit} bytes")
            }
            Error::TableFull { table } => write!(f, "{table} has no reclaimable entry"),
            Error::NoCheckpoint => f.write_str("no completed checkpoint to recover from"),
            Error::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            Error::MediaCorruption { addr, kind } => {
                write!(f, "media corruption ({kind}) at {addr}")
            }
            Error::RetriesExhausted { addr, attempts } => {
                write!(f, "read retries exhausted at {addr} after {attempts} attempts")
            }
            Error::SpareExhausted { addr } => {
                write!(f, "no spare block left to remap bad block at {addr}")
            }
            Error::IntegrityUnrecoverable { epoch } => {
                write!(
                    f,
                    "integrity verification failed on both checkpoint images at epoch {epoch}: no authenticated state to recover"
                )
            }
            Error::Degraded { rung } => {
                write!(f, "controller degraded to {rung}: new stores are rejected")
            }
            Error::UnfencedCommit { addr, pending } => {
                write!(
                    f,
                    "commit record at {addr} persisted with {pending} unfenced entries still pending in the persist buffer"
                )
            }
            Error::DramPoisonLost { addr, bytes } => {
                write!(
                    f,
                    "uncorrectable DRAM error: {bytes} dirty bytes at {addr} quarantined and rolled back to the last checkpoint"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_lowercase_and_informative() {
        let e = Error::AddressOutOfRange { addr: PhysAddr::new(0x1000), limit: 64 };
        assert!(e.to_string().contains("0x1000"));
        assert!(e.to_string().contains("64"));
        let e = Error::TableFull { table: "BTT" };
        assert!(e.to_string().contains("BTT"));
        assert!(!Error::NoCheckpoint.to_string().is_empty());
        let e = Error::InvalidConfig { reason: "dram too small".into() };
        assert!(e.to_string().contains("dram too small"));
        let e = Error::MediaCorruption { addr: PhysAddr::new(0x40), kind: FaultKind::StuckAt };
        assert!(e.to_string().contains("stuck-at"));
        assert!(e.to_string().contains("0x40"));
        let e = Error::RetriesExhausted { addr: PhysAddr::new(0x80), attempts: 3 };
        assert!(e.to_string().contains("3 attempts"));
        assert!(e.to_string().contains("0x80"));
        let e = Error::SpareExhausted { addr: PhysAddr::new(0xc0) };
        assert!(e.to_string().contains("no spare block"));
        assert!(e.to_string().contains("0xc0"));
        let e = Error::IntegrityUnrecoverable { epoch: 9 };
        assert!(e.to_string().contains("both checkpoint images"));
        assert!(e.to_string().contains("epoch 9"));
        let e = Error::Degraded { rung: HealthRung::ReadOnly };
        assert!(e.to_string().contains("read-only"));
        assert!(e.to_string().contains("stores are rejected"));
        let e = Error::UnfencedCommit { addr: PhysAddr::new(0x0), pending: 7 };
        assert!(e.to_string().contains("unfenced"));
        assert!(e.to_string().contains("7"));
        let e = Error::DramPoisonLost { addr: PhysAddr::new(0x2000), bytes: 4096 };
        assert!(e.to_string().contains("quarantined"));
        assert!(e.to_string().contains("0x2000"));
        assert!(e.to_string().contains("4096"));
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_good<E: std::error::Error + Send + Sync + 'static>() {}
        assert_good::<Error>();
    }
}
