//! The idealized single-technology baselines.
//!
//! Both systems are "assumed to provide crash consistency without any
//! overhead" (§5.1): they never checkpoint, never stall, and simply service
//! every request from their single device at its native timing.

use thynvm_mem::{Device, DeviceKind};
use thynvm_types::{
    AccessKind, Cycle, HwAddr, MemRequest, MemStats, MemorySystem, NvmWriteClass, SystemConfig,
};

/// Shared implementation for the two ideal systems.
#[derive(Debug)]
struct Ideal {
    device: Device,
    stats: MemStats,
    is_dram: bool,
}

impl Ideal {
    fn new(kind: DeviceKind, cfg: SystemConfig) -> Self {
        // The hybrid systems own two devices (DRAM + NVM) and therefore
        // twice the banks; give the single-technology baselines the same
        // aggregate bank parallelism so comparisons isolate the
        // crash-consistency mechanisms, not channel counts.
        let mut geometry = match kind {
            DeviceKind::Dram => cfg.dram_geometry,
            DeviceKind::Nvm => cfg.nvm_geometry,
        };
        geometry.channels *= 2;
        Self {
            device: Device::new(kind, cfg.timing, geometry),
            stats: MemStats::new(),
            is_dram: kind == DeviceKind::Dram,
        }
    }

    fn access(&mut self, req: &MemRequest, now: Cycle) -> Cycle {
        let done = self.device.access(HwAddr::new(req.addr.raw()), req.kind, req.bytes, now);
        match req.kind {
            AccessKind::Read => {
                self.stats.reads += 1;
                if self.is_dram {
                    self.stats.dram_reads += 1;
                    self.stats.dram_read_bytes += u64::from(req.bytes);
                } else {
                    self.stats.nvm_reads += 1;
                    self.stats.nvm_read_bytes += u64::from(req.bytes);
                }
            }
            AccessKind::Write => {
                self.stats.writes += 1;
                if self.is_dram {
                    self.stats.record_dram_write(u64::from(req.bytes));
                } else {
                    self.stats.record_nvm_write(u64::from(req.bytes), NvmWriteClass::Cpu);
                }
            }
        }
        self.stats.service_cycles += done.saturating_sub(now);
        done
    }
}

/// DRAM-only main memory with zero-cost crash consistency (§5.1 system 1).
///
/// Used as the normalization target of Figures 7 and 11: nothing can be
/// faster, and no consistency work is ever performed.
#[derive(Debug)]
pub struct IdealDram {
    inner: Ideal,
}

impl IdealDram {
    /// Creates the system with the paper's DRAM timing.
    pub fn new(cfg: SystemConfig) -> Self {
        Self { inner: Ideal::new(DeviceKind::Dram, cfg) }
    }

    /// The underlying device (row-buffer statistics).
    pub fn device(&self) -> &Device {
        &self.inner.device
    }
}

impl MemorySystem for IdealDram {
    fn access(&mut self, req: &MemRequest, now: Cycle) -> Cycle {
        self.inner.access(req, now)
    }

    fn drain(&mut self, now: Cycle) -> Cycle {
        now.max(self.inner.device.idle_at())
    }

    fn stats(&self) -> &MemStats {
        &self.inner.stats
    }

    fn name(&self) -> &'static str {
        "Ideal DRAM"
    }
}

/// NVM-only main memory with zero-cost crash consistency (§5.1 system 2).
#[derive(Debug)]
pub struct IdealNvm {
    inner: Ideal,
}

impl IdealNvm {
    /// Creates the system with the paper's NVM timing.
    pub fn new(cfg: SystemConfig) -> Self {
        Self { inner: Ideal::new(DeviceKind::Nvm, cfg) }
    }

    /// The underlying device (row-buffer statistics).
    pub fn device(&self) -> &Device {
        &self.inner.device
    }
}

impl MemorySystem for IdealNvm {
    fn access(&mut self, req: &MemRequest, now: Cycle) -> Cycle {
        self.inner.access(req, now)
    }

    fn drain(&mut self, now: Cycle) -> Cycle {
        now.max(self.inner.device.idle_at())
    }

    fn stats(&self) -> &MemStats {
        &self.inner.stats
    }

    fn name(&self) -> &'static str {
        "Ideal NVM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thynvm_types::PhysAddr;

    #[test]
    fn dram_uses_dram_timing() {
        let mut sys = IdealDram::new(SystemConfig::paper());
        let done = sys.access(&MemRequest::read(PhysAddr::new(0), 64), Cycle::ZERO);
        assert_eq!(done, Cycle::from_ns(80)); // DRAM row miss
        let done2 = sys.access(&MemRequest::read(PhysAddr::new(64), 64), done);
        assert_eq!(done2 - done, Cycle::from_ns(40)); // row hit
    }

    #[test]
    fn nvm_uses_nvm_timing() {
        let mut sys = IdealNvm::new(SystemConfig::paper());
        let done = sys.access(&MemRequest::read(PhysAddr::new(0), 64), Cycle::ZERO);
        assert_eq!(done, Cycle::from_ns(128)); // NVM clean miss
    }

    #[test]
    fn nvm_writes_classified_as_cpu_traffic() {
        let mut sys = IdealNvm::new(SystemConfig::paper());
        sys.access(&MemRequest::write(PhysAddr::new(0), 64), Cycle::ZERO);
        assert_eq!(sys.stats().nvm_write_bytes_cpu, 64);
        assert_eq!(sys.stats().nvm_write_bytes_ckpt, 0);
    }

    #[test]
    fn dram_write_bandwidth_counted_for_figure_10() {
        let mut sys = IdealDram::new(SystemConfig::paper());
        sys.access(&MemRequest::write(PhysAddr::new(0), 64), Cycle::ZERO);
        assert_eq!(sys.stats().dram_write_bytes, 64);
        assert_eq!(sys.stats().nvm_write_bytes_total(), 0);
    }

    #[test]
    fn never_requests_checkpoints() {
        let sys = IdealDram::new(SystemConfig::paper());
        assert!(!sys.checkpoint_due(Cycle::from_ms(1_000)));
        let sys = IdealNvm::new(SystemConfig::paper());
        assert!(!sys.checkpoint_due(Cycle::from_ms(1_000)));
    }

    #[test]
    fn begin_checkpoint_is_free() {
        let mut sys = IdealDram::new(SystemConfig::paper());
        let resume = sys.begin_checkpoint(Cycle::new(123), &[PhysAddr::new(0)]);
        assert_eq!(resume, Cycle::new(123));
        assert_eq!(sys.stats().ckpt_busy_cycles, Cycle::ZERO);
    }

    #[test]
    fn drain_waits_for_device_occupancy() {
        let mut sys = IdealNvm::new(SystemConfig::paper());
        let done = sys.access(&MemRequest::write(PhysAddr::new(0), 64), Cycle::ZERO);
        // The bank frees after activation + burst; the returned completion
        // (data latency) is later.
        let idle = sys.drain(Cycle::ZERO);
        assert_eq!(idle, Cycle::from_ns(88 + 5));
        assert!(idle <= done);
    }

    #[test]
    fn names() {
        assert_eq!(IdealDram::new(SystemConfig::paper()).name(), "Ideal DRAM");
        assert_eq!(IdealNvm::new(SystemConfig::paper()).name(), "Ideal NVM");
    }
}
