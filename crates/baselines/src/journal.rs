//! The journaling (redo-logging) baseline of §5.1, following the paper's
//! description: "A journal buffer is located in DRAM to collect and coalesce
//! updated blocks. At the end of each epoch, the buffer is written back to
//! NVM in a backup region, before it is committed in-place. This mechanism
//! uses a table to track buffered dirty blocks in DRAM. The size of the
//! table is the same as the combined size of the BTT and the PTT in ThyNVM."
//!
//! The flush is stop-the-world: the application cannot make progress while
//! the journal is persisted and committed, which is the source of the large
//! checkpointing-time share the paper reports for this baseline (18.9 % on
//! the micro-benchmarks, §5.2).
//!
//! # Secure mode
//!
//! With [`SecurityConfig`](thynvm_types::SecurityConfig) enabled the
//! baseline carries the same counter-mode-encryption metadata as ThyNVM
//! (Zuo et al., arXiv:1901.00620): every committed block bumps its write
//! counter, and each flush persists the dirty counter-table entries, the
//! distinct integrity-tree nodes on their paths to the root, and a 64 B
//! root record — all *before* the commit record. This makes the metadata
//! amplification of a journaling design directly comparable to ThyNVM's
//! (experiment E22). Security off is byte- and cycle-identical to a build
//! without the subsystem.


use thynvm_mem::{Device, DeviceKind, SecurityModel, SparseStore};
use thynvm_types::{
    AccessKind, BlockIndex, Cycle, FxHashMap, HwAddr, MemRequest, MemStats, MemorySystem, NvmWriteClass,
    PersistentMemory, PhysAddr, SystemConfig, BLOCK_BYTES,
};

/// Hardware-address base of the NVM journal backup region (disjoint from
/// all home addresses used by workloads).
const JOURNAL_BASE: u64 = 1 << 40;
/// DRAM slot size: one block.
const SLOT_BYTES: u64 = BLOCK_BYTES;
/// Security-metadata region within the journal's backup space: counter
/// table, integrity-tree nodes, and the root record live here, disjoint
/// from the journal entries themselves.
const JOURNAL_META_BASE: u64 = JOURNAL_BASE + (1 << 30);
/// Bytes per persisted counter-table / tree-node entry (matches ThyNVM's
/// metadata-entry size so E22 compares like with like).
const META_ENTRY_BYTES: u64 = 8;

/// The journaling hybrid memory system.
///
/// See the [module documentation](self) for the design.
#[derive(Debug)]
pub struct Journaling {
    cfg: SystemConfig,
    dram: Device,
    nvm: Device,
    /// Physical block → DRAM buffer slot.
    table: FxHashMap<BlockIndex, u32>,
    capacity: usize,
    next_slot: u32,
    epoch_start: Cycle,
    stats: MemStats,
    /// Functional layer: committed NVM contents (physical address space).
    committed: SparseStore,
    /// Functional layer: contents of buffered (not yet committed) blocks.
    buffer_data: SparseStore,
    /// Secure mode: counter-mode encryption + integrity-tree metadata,
    /// `None` unless `cfg.security.enabled`.
    security: Option<SecurityModel>,
}

impl Journaling {
    /// Creates the system; the coalescing table is as large as ThyNVM's
    /// BTT + PTT combined, per §5.1.
    pub fn new(cfg: SystemConfig) -> Self {
        Self {
            dram: Device::new(DeviceKind::Dram, cfg.timing, cfg.dram_geometry),
            nvm: Device::new(DeviceKind::Nvm, cfg.timing, cfg.nvm_geometry),
            table: FxHashMap::default(),
            capacity: cfg.thynvm.btt_entries + cfg.thynvm.ptt_entries,
            next_slot: 0,
            epoch_start: Cycle::ZERO,
            stats: MemStats::new(),
            committed: SparseStore::new(),
            buffer_data: SparseStore::new(),
            security: cfg.security.enabled.then(|| SecurityModel::new(&cfg.security)),
            cfg,
        }
    }

    /// Number of blocks currently buffered in the DRAM journal.
    pub fn buffered_blocks(&self) -> usize {
        self.table.len()
    }

    /// The NVM device (row-buffer and wear statistics).
    pub fn nvm_device(&self) -> &Device {
        &self.nvm
    }

    fn slot_addr(&self, slot: u32) -> HwAddr {
        HwAddr::new(u64::from(slot) * SLOT_BYTES)
    }

    /// Attributes counter-mode encryption + MAC work for `bytes` of data.
    /// Pure stats, as in ThyNVM: the AES-CTR pads overlap the burst
    /// transfers. A no-op with secure mode off, so disabled runs stay
    /// bit-identical.
    fn charge_crypto(&mut self, bytes: u64, encrypt: bool) {
        if self.security.is_none() {
            return;
        }
        let blocks = bytes.div_ceil(BLOCK_BYTES);
        if blocks == 0 {
            return;
        }
        let ns = (self.cfg.security.crypto_ns_per_block + self.cfg.security.mac_ns_per_block)
            * blocks;
        self.stats.security.crypto_cycles += Cycle::from_ns(ns);
        if encrypt {
            self.stats.security.blocks_encrypted += blocks;
        } else {
            self.stats.security.blocks_verified += blocks;
        }
    }

    /// Stop-the-world journal flush: write every buffered block to the NVM
    /// journal region, then commit it in place. Returns the completion
    /// cycle.
    fn flush(&mut self, now: Cycle) -> Cycle {
        // Functional commit: the journal's redo rule makes the whole batch
        // atomic — apply every buffered block to the committed image.
        let buffered: Vec<BlockIndex> = self.table.keys().copied().collect();
        for block in buffered {
            let base = HwAddr::new(block.byte_offset());
            let data = self.buffer_data.read_block(base);
            self.committed.write(base, &data);
        }
        self.buffer_data.clear();

        let mut blocks: Vec<(BlockIndex, u32)> = self.table.drain().collect();
        blocks.sort_unstable_by_key(|(_, slot)| *slot); // journal order = arrival order
        // Operations are issued as fast as the devices accept them; bank
        // busy-times arbitrate. Per block the DRAM read feeds the journal
        // write, and the in-place commit follows the journal write (redo
        // rule: the log entry must be durable before the home location is
        // overwritten).
        let mut t = now;
        for (i, (block, slot)) in blocks.iter().enumerate() {
            // Read the buffered block from DRAM.
            let read_done =
                self.dram.access(self.slot_addr(*slot), AccessKind::Read, BLOCK_BYTES as u32, now);
            self.stats.dram_reads += 1;
            self.stats.dram_read_bytes += BLOCK_BYTES;
            // Journal write: data + metadata tuple (address), sequential.
            let jaddr = HwAddr::new(JOURNAL_BASE + (i as u64) * (BLOCK_BYTES + 8));
            let jdone =
                self.nvm.access(jaddr, AccessKind::Write, (BLOCK_BYTES + 8) as u32, read_done);
            self.stats.record_nvm_write(BLOCK_BYTES + 8, NvmWriteClass::Checkpoint);
            // In-place commit to the home location.
            let home = HwAddr::new(block.byte_offset());
            let cdone = self.nvm.access(home, AccessKind::Write, BLOCK_BYTES as u32, jdone);
            self.stats.record_nvm_write(BLOCK_BYTES, NvmWriteClass::Cpu);
            t = t.max(cdone);
            // Secure mode: the block is encrypted once under a bumped
            // write counter; the journal entry and the home location carry
            // the same ciphertext.
            if let Some(sec) = self.security.as_mut() {
                sec.note_block_write(home.raw());
            }
            self.charge_crypto(BLOCK_BYTES, true);
        }
        // Secure mode persists the dirty counters, the distinct tree nodes
        // on their paths to the root, and the root record *before* the
        // commit record — the state the commit flag covers must already be
        // authenticated (same discipline as ThyNVM's step 4b).
        if self.security.is_some() {
            let receipt =
                self.security.as_mut().expect("invariant: secure mode is on in this block").persist();
            if receipt.counter_entries > 0 {
                let ctr_bytes = receipt.counter_entries as u64 * META_ENTRY_BYTES;
                t = self.nvm.access(
                    HwAddr::new(JOURNAL_META_BASE),
                    AccessKind::Write,
                    u32::try_from(ctr_bytes.max(64).min(u64::from(u32::MAX))).expect("bounded"),
                    t,
                );
                self.stats.record_nvm_write(ctr_bytes, NvmWriteClass::Checkpoint);
                self.stats.security.counter_persists += 1;
                self.stats.security.counter_bytes += ctr_bytes;
                let tree_bytes = receipt.tree_nodes * META_ENTRY_BYTES;
                t = self.nvm.access(
                    HwAddr::new(JOURNAL_META_BASE + (1 << 20)),
                    AccessKind::Write,
                    u32::try_from(tree_bytes.max(64).min(u64::from(u32::MAX))).expect("bounded"),
                    t,
                );
                self.stats.record_nvm_write(tree_bytes, NvmWriteClass::Checkpoint);
                self.stats.security.tree_node_persists += receipt.tree_nodes;
                self.stats.security.tree_bytes += tree_bytes;
            }
            t = self.nvm.access(HwAddr::new(JOURNAL_META_BASE + (2 << 20)), AccessKind::Write, 64, t);
            self.stats.record_nvm_write(64, NvmWriteClass::Checkpoint);
            self.stats.security.root_persists += 1;
            self.charge_crypto(64, true);
        }
        // Commit record.
        t = self.nvm.access(HwAddr::new(JOURNAL_BASE), AccessKind::Write, 64, t);
        self.stats.record_nvm_write(8, NvmWriteClass::Checkpoint);

        self.stats.ckpt_busy_cycles += t - now;
        self.stats.ckpt_stall_cycles += t - now; // stop-the-world
        self.stats.epochs_completed += 1;
        self.next_slot = 0;
        self.epoch_start = t;
        t
    }
}

impl MemorySystem for Journaling {
    fn access(&mut self, req: &MemRequest, now: Cycle) -> Cycle {
        let mut t = now;
        match req.kind {
            AccessKind::Write => {
                self.stats.writes += 1;
                for block_addr in req.blocks_touched() {
                    let block = block_addr.block();
                    // Full table forces an immediate epoch end.
                    if !self.table.contains_key(&block) && self.table.len() >= self.capacity {
                        t = self.flush(t);
                    }
                    let next = self.next_slot;
                    let slot = *self.table.entry(block).or_insert_with(|| next);
                    if slot == next {
                        self.next_slot += 1;
                    }
                    t = self.dram.access(self.slot_addr(slot), AccessKind::Write, BLOCK_BYTES as u32, t);
                    self.stats.record_dram_write(BLOCK_BYTES);
                }
            }
            AccessKind::Read => {
                self.stats.reads += 1;
                for block_addr in req.blocks_touched() {
                    let block = block_addr.block();
                    if let Some(&slot) = self.table.get(&block) {
                        t = self.dram.access(self.slot_addr(slot), AccessKind::Read, BLOCK_BYTES as u32, t);
                        self.stats.dram_reads += 1;
                        self.stats.dram_read_bytes += BLOCK_BYTES;
                    } else {
                        t = self.nvm.access(
                            HwAddr::new(block.byte_offset()),
                            AccessKind::Read,
                            BLOCK_BYTES as u32,
                            t,
                        );
                        self.stats.nvm_reads += 1;
                        self.stats.nvm_read_bytes += BLOCK_BYTES;
                    }
                }
            }
        }
        self.stats.service_cycles += t.saturating_sub(now);
        t
    }

    fn checkpoint_due(&self, now: Cycle) -> bool {
        // Request the epoch end slightly before the table is hard-full so
        // the platform performs the flush through the proper processor
        // handshake; the inline flush in `access` is only a backstop.
        now.saturating_sub(self.epoch_start) >= self.cfg.thynvm.epoch_max()
            || self.table.len() * 10 >= self.capacity * 9
    }

    fn begin_checkpoint(&mut self, now: Cycle, flushed: &[PhysAddr]) -> Cycle {
        // CPU dirty blocks join the journal before the flush.
        let mut t = now;
        for &addr in flushed {
            t = self.access(&MemRequest::write(addr, BLOCK_BYTES as u32), t);
        }
        self.flush(t)
    }

    fn drain(&mut self, now: Cycle) -> Cycle {
        let t = if self.table.is_empty() { now } else { self.flush(now) };
        t.max(self.nvm.idle_at()).max(self.dram.idle_at())
    }

    fn stats(&self) -> &MemStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "Journal"
    }
}

impl PersistentMemory for Journaling {
    fn store_bytes(&mut self, addr: PhysAddr, data: &[u8], now: Cycle) -> Cycle {
        // Blocks entering the buffer are initialized from the committed
        // image so partially-written blocks read back correctly.
        let req = MemRequest::write(addr, u32::try_from(data.len()).expect("write too large"));
        for block_addr in req.blocks_touched() {
            let block = block_addr.block();
            if !self.table.contains_key(&block) {
                let base = HwAddr::new(block.byte_offset());
                let current = self.committed.read_block(base);
                self.buffer_data.write(base, &current);
            }
        }
        self.buffer_data.write(HwAddr::new(addr.raw()), data);
        self.access(&req, now)
    }

    fn load_bytes(&mut self, addr: PhysAddr, buf: &mut [u8], now: Cycle) -> Cycle {
        // Assemble byte-wise: buffered blocks shadow committed contents.
        for (i, slot) in buf.iter_mut().enumerate() {
            let a = addr.raw() + i as u64;
            let block = PhysAddr::new(a).block();
            let mut byte = [0u8; 1];
            if self.table.contains_key(&block) {
                self.buffer_data.read(HwAddr::new(a), &mut byte);
            } else {
                self.committed.read(HwAddr::new(a), &mut byte);
            }
            *slot = byte[0];
        }
        self.access(&MemRequest::read(addr, u32::try_from(buf.len()).expect("read too large")), now)
    }

    fn persist(&mut self, now: Cycle) -> Cycle {
        if self.table.is_empty() {
            now
        } else {
            self.flush(now)
        }
    }

    fn power_fail(&mut self, now: Cycle) -> Cycle {
        // Everything volatile is lost: the DRAM journal buffer and device
        // row buffers. The committed NVM image survives.
        self.table.clear();
        self.buffer_data.clear();
        self.next_slot = 0;
        self.dram.power_cycle();
        self.nvm.power_cycle();
        self.epoch_start = now;
        now + Cycle::from_ns(1_000) // journal scan: no entries to replay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> Journaling {
        Journaling::new(SystemConfig::small_test())
    }

    #[test]
    fn writes_buffer_in_dram() {
        let mut j = sys();
        j.access(&MemRequest::write(PhysAddr::new(0), 64), Cycle::ZERO);
        assert_eq!(j.buffered_blocks(), 1);
        assert_eq!(j.stats().dram_write_bytes, 64);
        assert_eq!(j.stats().nvm_write_bytes_total(), 0);
    }

    #[test]
    fn writes_coalesce_per_block() {
        let mut j = sys();
        j.access(&MemRequest::write(PhysAddr::new(0), 64), Cycle::ZERO);
        j.access(&MemRequest::write(PhysAddr::new(32), 32), Cycle::new(1_000));
        assert_eq!(j.buffered_blocks(), 1);
    }

    #[test]
    fn reads_hit_buffer_else_nvm() {
        let mut j = sys();
        j.access(&MemRequest::write(PhysAddr::new(0), 64), Cycle::ZERO);
        let r1 = Cycle::new(10_000);
        let d1 = j.access(&MemRequest::read(PhysAddr::new(0), 64), r1);
        // Buffered: DRAM row-hit/miss latency, well under NVM clean miss.
        assert!(d1 - r1 <= Cycle::from_ns(80));
        let before = j.stats().nvm_reads;
        j.access(&MemRequest::read(PhysAddr::new(1 << 20), 64), d1);
        assert_eq!(j.stats().nvm_reads, before + 1);
    }

    #[test]
    fn flush_writes_journal_then_commits_in_place() {
        let mut j = sys();
        j.access(&MemRequest::write(PhysAddr::new(0), 64), Cycle::ZERO);
        let t = j.begin_checkpoint(Cycle::new(1_000), &[]);
        assert!(t > Cycle::new(1_000));
        assert_eq!(j.buffered_blocks(), 0);
        // Journal entry (72 B) + commit record (8) as ckpt, commit (64) as CPU.
        assert_eq!(j.stats().nvm_write_bytes_ckpt, 72 + 8);
        assert_eq!(j.stats().nvm_write_bytes_cpu, 64);
        assert_eq!(j.stats().epochs_completed, 1);
    }

    #[test]
    fn flush_is_stop_the_world() {
        let mut j = sys();
        for i in 0..100u64 {
            j.access(&MemRequest::write(PhysAddr::new(i * 64), 64), Cycle::ZERO);
        }
        let resume = j.begin_checkpoint(Cycle::new(10_000), &[]);
        let busy = j.stats().ckpt_busy_cycles;
        assert_eq!(j.stats().ckpt_stall_cycles, busy);
        assert_eq!(resume, Cycle::new(10_000) + busy);
    }

    #[test]
    fn table_overflow_flushes_inline() {
        let mut cfg = SystemConfig::small_test();
        cfg.thynvm.btt_entries = 4;
        cfg.thynvm.ptt_entries = 4; // capacity 8
        let mut j = Journaling::new(cfg);
        let mut t = Cycle::ZERO;
        for i in 0..9u64 {
            t = j.access(&MemRequest::write(PhysAddr::new(i * 64), 64), t);
        }
        assert_eq!(j.stats().epochs_completed, 1, "overflow forced a flush");
        assert!(j.buffered_blocks() <= 8);
    }

    #[test]
    fn epoch_timer_requests_checkpoint() {
        let j = sys();
        assert!(!j.checkpoint_due(Cycle::ZERO));
        assert!(j.checkpoint_due(Cycle::from_ms(1))); // small_test epoch = 1 ms
    }

    #[test]
    fn flushed_cpu_blocks_join_the_epoch() {
        let mut j = sys();
        let t = j.begin_checkpoint(Cycle::ZERO, &[PhysAddr::new(0), PhysAddr::new(64)]);
        assert!(t > Cycle::ZERO);
        // Two blocks journaled + committed.
        assert_eq!(j.stats().nvm_write_bytes_cpu, 128);
    }

    #[test]
    fn drain_flushes_remaining() {
        let mut j = sys();
        j.access(&MemRequest::write(PhysAddr::new(0), 64), Cycle::ZERO);
        let t = j.drain(Cycle::new(100));
        assert!(t > Cycle::new(100));
        assert_eq!(j.buffered_blocks(), 0);
        assert_eq!(j.drain(t), t, "idempotent when clean");
    }

    #[test]
    fn name() {
        assert_eq!(sys().name(), "Journal");
    }

    #[test]
    fn security_off_charges_nothing_and_keeps_flush_bytes() {
        let mut j = sys();
        j.access(&MemRequest::write(PhysAddr::new(0), 64), Cycle::ZERO);
        j.begin_checkpoint(Cycle::new(1_000), &[]);
        assert!(!j.stats().security.any(), "disabled mode records nothing");
        assert_eq!(j.stats().security.crypto_cycles, Cycle::ZERO);
        assert_eq!(j.stats().nvm_write_bytes_ckpt, 72 + 8, "byte-identical to pre-secure");
    }

    #[test]
    fn secure_flush_persists_counters_tree_and_root() {
        let mut cfg = SystemConfig::small_test();
        cfg.security = thynvm_types::SecurityConfig::hardened();
        cfg.validate().expect("valid secure config");
        let mut j = Journaling::new(cfg);
        j.access(&MemRequest::write(PhysAddr::new(0), 64), Cycle::ZERO);
        let t = j.begin_checkpoint(Cycle::new(1_000), &[]);
        let s = j.stats().security;
        assert_eq!(s.counter_persists, 1, "dirty counter persisted with the flush");
        assert!(s.counter_bytes > 0);
        assert!(s.tree_node_persists > 0, "ancestor tree nodes rewritten");
        assert_eq!(s.root_persists, 1, "root sealed before the commit record");
        assert!(s.blocks_encrypted > 0);
        assert!(s.crypto_cycles > Cycle::ZERO);
        // Metadata amplification: strictly more checkpoint-class bytes
        // than the plain journal entry + commit record.
        assert!(j.stats().nvm_write_bytes_ckpt > 72 + 8);
        // A secure flush is never faster than a plain one.
        let mut plain = sys();
        plain.access(&MemRequest::write(PhysAddr::new(0), 64), Cycle::ZERO);
        let tp = plain.begin_checkpoint(Cycle::new(1_000), &[]);
        assert!(t >= tp);
    }

    #[test]
    fn quiet_secure_flush_still_seals_the_root() {
        let mut cfg = SystemConfig::small_test();
        cfg.security = thynvm_types::SecurityConfig::hardened();
        cfg.validate().expect("valid secure config");
        let mut j = Journaling::new(cfg);
        j.access(&MemRequest::write(PhysAddr::new(0), 64), Cycle::ZERO);
        j.begin_checkpoint(Cycle::new(1_000), &[]);
        // A flush with nothing buffered persists no counters but still
        // seals the generation-bearing root.
        j.begin_checkpoint(Cycle::new(1_000_000), &[PhysAddr::new(64)]);
        let s = j.stats().security;
        assert_eq!(s.counter_persists, 2, "second flush had a dirty counter too");
        assert_eq!(s.root_persists, 2, "root sealed every flush");
    }
}
