//! The shadow-paging (copy-on-write) baseline of §5.1.
//!
//! "It performs copy-on-write on NVM pages and creates buffer pages in
//! DRAM. When DRAM buffer is full, dirty pages are flushed to NVM, without
//! overwriting data in-place. The size of DRAM in this configuration is the
//! same as ThyNVM's DRAM."
//!
//! The pathology the paper highlights (§5.2): under random access, almost
//! every page in the buffer has only a few dirty blocks, yet the flush
//! writes each *entire 4 KiB page* to NVM — wasting bandwidth and stalling
//! the application, since the flush is stop-the-world.


use thynvm_mem::{Device, DeviceKind, SparseStore};
use thynvm_types::{
    AccessKind, Cycle, FxHashMap, HwAddr, MemRequest, MemStats, MemorySystem, NvmWriteClass, PageIndex,
    PersistentMemory, PhysAddr, SystemConfig, PAGE_BYTES,
};

/// Base of the NVM shadow area (alternating with the home copies).
const SHADOW_BASE: u64 = 1 << 40;

#[derive(Debug, Clone, Copy)]
struct BufferedPage {
    slot: u32,
    dirty: bool,
    /// Which copy is current: `false` = home, `true` = shadow area. Flipped
    /// on every flush (copy-on-write never overwrites in place).
    in_shadow: bool,
}

/// The shadow-paging hybrid memory system.
///
/// See the [module documentation](self) for the design.
#[derive(Debug)]
pub struct ShadowPaging {
    cfg: SystemConfig,
    dram: Device,
    nvm: Device,
    pages: FxHashMap<PageIndex, BufferedPage>,
    free_slots: Vec<u32>,
    epoch_start: Cycle,
    stats: MemStats,
    /// Functional layer: committed NVM contents (physical address space).
    committed: SparseStore,
    /// Functional layer: contents of the DRAM page buffer.
    buffer_data: SparseStore,
}

impl ShadowPaging {
    /// Creates the system with a DRAM buffer as large as ThyNVM's DRAM.
    pub fn new(cfg: SystemConfig) -> Self {
        let slots = u32::try_from(cfg.thynvm.dram_pages()).expect("DRAM too large");
        Self {
            dram: Device::new(DeviceKind::Dram, cfg.timing, cfg.dram_geometry),
            nvm: Device::new(DeviceKind::Nvm, cfg.timing, cfg.nvm_geometry),
            pages: FxHashMap::default(),
            free_slots: (0..slots).rev().collect(),
            epoch_start: Cycle::ZERO,
            stats: MemStats::new(),
            committed: SparseStore::new(),
            buffer_data: SparseStore::new(),
            cfg,
        }
    }

    /// Number of pages currently buffered in DRAM.
    pub fn buffered_pages(&self) -> usize {
        self.pages.len()
    }

    /// Number of buffered pages that are dirty.
    pub fn dirty_pages(&self) -> usize {
        self.pages.values().filter(|p| p.dirty).count()
    }

    /// The NVM device (row-buffer and wear statistics).
    pub fn nvm_device(&self) -> &Device {
        &self.nvm
    }

    fn slot_addr(&self, slot: u32) -> HwAddr {
        HwAddr::new(u64::from(slot) * PAGE_BYTES)
    }

    fn nvm_addr(&self, page: PageIndex, shadow: bool) -> HwAddr {
        let base = if shadow { SHADOW_BASE } else { 0 };
        HwAddr::new(base + page.byte_offset())
    }

    /// Stop-the-world flush of every dirty buffered page to its shadow
    /// location. Clean pages stay cached; dirty pages become clean (their
    /// current copy flips to the freshly written location).
    fn flush(&mut self, now: Cycle) -> Cycle {
        // Operations issue as fast as the devices accept them; bank
        // busy-times arbitrate. Each page's NVM write waits for its DRAM
        // read.
        let mut t = now;
        let mut flushed = 0u64;
        let mut dirty: Vec<PageIndex> =
            self.pages.iter().filter(|(_, p)| p.dirty).map(|(&i, _)| i).collect();
        dirty.sort_unstable();
        // Functional commit: the root-pointer switch makes the batch atomic.
        for &page in &dirty {
            let base = HwAddr::new(page.byte_offset());
            let data = self.buffer_data.read_page(base);
            self.committed.write(base, &data[..]);
        }
        for page in dirty {
            let entry = self.pages.get_mut(&page).expect("listed");
            let slot = entry.slot;
            let target_shadow = !entry.in_shadow;
            entry.dirty = false;
            entry.in_shadow = target_shadow;
            let slot_addr = self.slot_addr(slot);
            let dst = self.nvm_addr(page, target_shadow);
            let read_done = self.dram.access(slot_addr, AccessKind::Read, PAGE_BYTES as u32, now);
            self.stats.dram_reads += 1;
            self.stats.dram_read_bytes += PAGE_BYTES;
            let write_done = self.nvm.access(dst, AccessKind::Write, PAGE_BYTES as u32, read_done);
            self.stats.record_nvm_write(PAGE_BYTES, NvmWriteClass::Checkpoint);
            t = t.max(write_done);
            flushed += 1;
        }
        // Atomic root-pointer switch.
        t = self.nvm.access(HwAddr::new(SHADOW_BASE), AccessKind::Write, 64, t);
        self.stats.record_nvm_write(8, NvmWriteClass::Checkpoint);

        self.stats.ckpt_busy_cycles += t - now;
        self.stats.ckpt_stall_cycles += t - now; // stop-the-world
        self.stats.epochs_completed += 1;
        self.epoch_start = t;
        let _ = flushed;
        t
    }

    /// Ensures `page` is buffered in DRAM, copying it from NVM on first
    /// touch (the CoW copy). Returns `(slot, completion)`.
    fn ensure_buffered(&mut self, page: PageIndex, mut t: Cycle) -> (u32, Cycle) {
        if let Some(p) = self.pages.get(&page) {
            return (p.slot, t);
        }
        // Need a slot: evict a clean page, or flush if everything is dirty.
        if self.free_slots.is_empty() {
            if let Some(victim) =
                self.pages.iter().filter(|(_, p)| !p.dirty).map(|(&i, _)| i).min()
            {
                let freed = self.pages.remove(&victim).expect("found");
                self.free_slots.push(freed.slot);
            } else {
                t = self.flush(t);
                let victim = self.pages.keys().copied().min().expect("buffer nonempty");
                let freed = self.pages.remove(&victim).expect("found");
                self.free_slots.push(freed.slot);
            }
        }
        let slot = self.free_slots.pop().expect("slot available");
        // Functional copy-on-write: the buffer page starts as the committed
        // contents.
        let base = HwAddr::new(page.byte_offset());
        let current = self.committed.read_page(base);
        self.buffer_data.write(base, &current[..]);
        // Copy-on-write: read the current NVM copy into the buffer page.
        t = self.nvm.access(self.nvm_addr(page, false), AccessKind::Read, PAGE_BYTES as u32, t);
        self.stats.nvm_reads += 1;
        self.stats.nvm_read_bytes += PAGE_BYTES;
        t = self.dram.access(self.slot_addr(slot), AccessKind::Write, PAGE_BYTES as u32, t);
        self.stats.record_dram_write(PAGE_BYTES);
        self.pages.insert(page, BufferedPage { slot, dirty: false, in_shadow: false });
        (slot, t)
    }
}

impl MemorySystem for ShadowPaging {
    fn access(&mut self, req: &MemRequest, now: Cycle) -> Cycle {
        let mut t = now;
        let page = req.addr.page();
        match req.kind {
            AccessKind::Write => {
                self.stats.writes += 1;
                let (slot, t2) = self.ensure_buffered(page, t);
                t = t2;
                let addr = self.slot_addr(slot).offset(req.addr.page_offset());
                t = self.dram.access(addr, AccessKind::Write, req.bytes, t);
                self.stats.record_dram_write(u64::from(req.bytes));
                self.pages.get_mut(&page).expect("buffered").dirty = true;
            }
            AccessKind::Read => {
                self.stats.reads += 1;
                if let Some(p) = self.pages.get(&page) {
                    let addr = self.slot_addr(p.slot).offset(req.addr.page_offset());
                    t = self.dram.access(addr, AccessKind::Read, req.bytes, t);
                    self.stats.dram_reads += 1;
                    self.stats.dram_read_bytes += u64::from(req.bytes);
                } else {
                    let shadow = false;
                    t = self.nvm.access(
                        self.nvm_addr(page, shadow).offset(req.addr.page_offset()),
                        AccessKind::Read,
                        req.bytes,
                        t,
                    );
                    self.stats.nvm_reads += 1;
                    self.stats.nvm_read_bytes += u64::from(req.bytes);
                }
            }
        }
        self.stats.service_cycles += t.saturating_sub(now);
        t
    }

    fn checkpoint_due(&self, now: Cycle) -> bool {
        // Epoch timer, or buffer nearly exhausted by dirty pages (so the
        // flush runs through the processor handshake rather than the inline
        // backstop in `ensure_buffered`).
        let capacity = self.free_slots.len() + self.pages.len();
        now.saturating_sub(self.epoch_start) >= self.cfg.thynvm.epoch_max()
            || self.dirty_pages() * 10 >= capacity * 9
    }

    fn begin_checkpoint(&mut self, now: Cycle, flushed: &[PhysAddr]) -> Cycle {
        let mut t = now;
        for &addr in flushed {
            t = self.access(&MemRequest::write(addr, 64), t);
        }
        self.flush(t)
    }

    fn drain(&mut self, now: Cycle) -> Cycle {
        let t = if self.dirty_pages() == 0 { now } else { self.flush(now) };
        t.max(self.nvm.idle_at()).max(self.dram.idle_at())
    }

    fn stats(&self) -> &MemStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "Shadow"
    }
}

impl PersistentMemory for ShadowPaging {
    fn store_bytes(&mut self, addr: PhysAddr, data: &[u8], now: Cycle) -> Cycle {
        // May span pages; each page is buffered (CoW) before writing.
        let mut t = now;
        let mut off = 0usize;
        while off < data.len() {
            let a = addr.raw() + off as u64;
            let page = PhysAddr::new(a).page();
            let in_page = (PAGE_BYTES - PhysAddr::new(a).page_offset()) as usize;
            let chunk = in_page.min(data.len() - off);
            t = t.max(self.access(
                &MemRequest::write(PhysAddr::new(a), u32::try_from(chunk).expect("bounded")),
                t,
            ));
            debug_assert!(self.pages.contains_key(&page), "access buffers the page");
            self.buffer_data.write(HwAddr::new(a), &data[off..off + chunk]);
            off += chunk;
        }
        t
    }

    fn load_bytes(&mut self, addr: PhysAddr, buf: &mut [u8], now: Cycle) -> Cycle {
        for (i, slot) in buf.iter_mut().enumerate() {
            let a = addr.raw() + i as u64;
            let page = PhysAddr::new(a).page();
            let mut byte = [0u8; 1];
            if self.pages.contains_key(&page) {
                self.buffer_data.read(HwAddr::new(a), &mut byte);
            } else {
                self.committed.read(HwAddr::new(a), &mut byte);
            }
            *slot = byte[0];
        }
        self.access(&MemRequest::read(addr, u32::try_from(buf.len()).expect("read too large")), now)
    }

    fn persist(&mut self, now: Cycle) -> Cycle {
        if self.dirty_pages() == 0 {
            now
        } else {
            self.flush(now)
        }
    }

    fn power_fail(&mut self, now: Cycle) -> Cycle {
        let slots = u32::try_from(self.cfg.thynvm.dram_pages()).expect("bounded");
        self.pages.clear();
        self.buffer_data.clear();
        self.free_slots = (0..slots).rev().collect();
        self.dram.power_cycle();
        self.nvm.power_cycle();
        self.epoch_start = now;
        now + Cycle::from_ns(1_000) // root pointer read + table reset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> ShadowPaging {
        ShadowPaging::new(SystemConfig::small_test()) // 64-page DRAM buffer
    }

    #[test]
    fn first_write_copies_page_into_dram() {
        let mut s = sys();
        s.access(&MemRequest::write(PhysAddr::new(8), 8), Cycle::ZERO);
        assert_eq!(s.buffered_pages(), 1);
        assert_eq!(s.dirty_pages(), 1);
        // CoW copy: 4 KiB NVM read + 4 KiB DRAM fill + the 8 B store.
        assert_eq!(s.stats().nvm_read_bytes, PAGE_BYTES);
        assert_eq!(s.stats().dram_write_bytes, PAGE_BYTES + 8);
    }

    #[test]
    fn second_write_to_same_page_is_cheap() {
        let mut s = sys();
        let t = s.access(&MemRequest::write(PhysAddr::new(8), 8), Cycle::ZERO);
        let before = s.stats().nvm_read_bytes;
        s.access(&MemRequest::write(PhysAddr::new(16), 8), t);
        assert_eq!(s.stats().nvm_read_bytes, before, "no second CoW copy");
        assert_eq!(s.buffered_pages(), 1);
    }

    #[test]
    fn flush_writes_entire_pages() {
        let mut s = sys();
        // One tiny write dirties a whole page.
        s.access(&MemRequest::write(PhysAddr::new(0), 8), Cycle::ZERO);
        let t = s.begin_checkpoint(Cycle::new(100_000), &[]);
        assert!(t > Cycle::new(100_000));
        // The pathology: 4 KiB of checkpoint traffic for an 8 B write.
        assert!(s.stats().nvm_write_bytes_ckpt >= PAGE_BYTES);
        assert_eq!(s.dirty_pages(), 0);
        assert_eq!(s.buffered_pages(), 1, "page stays cached clean");
    }

    #[test]
    fn flush_alternates_shadow_locations() {
        let mut s = sys();
        s.access(&MemRequest::write(PhysAddr::new(0), 8), Cycle::ZERO);
        let t1 = s.begin_checkpoint(Cycle::new(1_000), &[]);
        assert!(s.pages.get(&PageIndex::new(0)).unwrap().in_shadow);
        s.access(&MemRequest::write(PhysAddr::new(0), 8), t1);
        let _t2 = s.begin_checkpoint(t1 + Cycle::new(1_000), &[]);
        assert!(!s.pages.get(&PageIndex::new(0)).unwrap().in_shadow);
    }

    #[test]
    fn buffer_exhaustion_evicts_clean_then_flushes() {
        let mut s = sys(); // 64 slots
        let mut t = Cycle::ZERO;
        // Dirty 64 distinct pages.
        for i in 0..64u64 {
            t = s.access(&MemRequest::write(PhysAddr::new(i * PAGE_BYTES), 8), t);
        }
        assert_eq!(s.buffered_pages(), 64);
        let flushes_before = s.stats().epochs_completed;
        // 65th page: everything dirty → inline flush.
        s.access(&MemRequest::write(PhysAddr::new(64 * PAGE_BYTES), 8), t);
        assert_eq!(s.stats().epochs_completed, flushes_before + 1);
        assert!(s.buffered_pages() <= 64);
    }

    #[test]
    fn reads_prefer_buffer() {
        let mut s = sys();
        let t = s.access(&MemRequest::write(PhysAddr::new(0), 8), Cycle::ZERO);
        let before = s.stats().dram_reads;
        s.access(&MemRequest::read(PhysAddr::new(32), 8), t);
        assert_eq!(s.stats().dram_reads, before + 1);
        // Unbuffered page reads from NVM home.
        let before_nvm = s.stats().nvm_reads;
        s.access(&MemRequest::read(PhysAddr::new(1 << 20), 8), t);
        assert_eq!(s.stats().nvm_reads, before_nvm + 1);
    }

    #[test]
    fn flush_is_stop_the_world() {
        let mut s = sys();
        s.access(&MemRequest::write(PhysAddr::new(0), 8), Cycle::ZERO);
        let start = Cycle::new(50_000);
        let resume = s.begin_checkpoint(start, &[]);
        assert_eq!(resume - start, s.stats().ckpt_busy_cycles);
        assert_eq!(s.stats().ckpt_stall_cycles, s.stats().ckpt_busy_cycles);
    }

    #[test]
    fn drain_flushes_dirty_pages_only() {
        let mut s = sys();
        s.access(&MemRequest::write(PhysAddr::new(0), 8), Cycle::ZERO);
        let t = s.drain(Cycle::new(100_000));
        assert_eq!(s.dirty_pages(), 0);
        assert_eq!(s.drain(t), t, "idempotent when clean");
    }

    #[test]
    fn epoch_timer() {
        let s = sys();
        assert!(!s.checkpoint_due(Cycle::ZERO));
        assert!(s.checkpoint_due(Cycle::from_ms(1)));
    }

    #[test]
    fn name() {
        assert_eq!(sys().name(), "Shadow");
    }
}
