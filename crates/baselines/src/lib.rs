//! The four baseline memory systems of §5.1.
//!
//! Every system implements [`thynvm_types::MemorySystem`], so the same
//! core/cache driver and the same workload traces run unmodified against
//! all of them:
//!
//! * [`IdealDram`] — DRAM-only main memory, *assumed* to provide crash
//!   consistency at zero cost. The performance upper bound.
//! * [`IdealNvm`] — NVM-only main memory with the same zero-cost
//!   assumption.
//! * [`Journaling`] — a hybrid DRAM+NVM system using redo journaling
//!   (§2.2, implementation following the paper's description): dirty blocks
//!   coalesce in a DRAM journal buffer; at each epoch end the buffer is
//!   written to an NVM backup region and then committed in place,
//!   stop-the-world.
//! * [`ShadowPaging`] — a hybrid system using page-granularity copy-on-
//!   write: pages are copied into a DRAM buffer on first write; at each
//!   epoch end (or when the buffer fills) every dirty page is flushed to a
//!   shadow location in NVM, stop-the-world — even if only one block of the
//!   page is dirty, which is its Random-pattern pathology (§5.2).
//!
//! # Example
//!
//! ```
//! use thynvm_baselines::{IdealDram, Journaling};
//! use thynvm_types::{Cycle, MemorySystem, MemRequest, PhysAddr, SystemConfig};
//!
//! let cfg = SystemConfig::paper();
//! let mut ideal = IdealDram::new(cfg);
//! let mut journal = Journaling::new(cfg);
//! let req = MemRequest::write(PhysAddr::new(0x40), 64);
//! let t_ideal = ideal.access(&req, Cycle::ZERO);
//! let t_journal = journal.access(&req, Cycle::ZERO);
//! // Both service the write; the journal will additionally pay at its next
//! // checkpoint, the ideal system never pays.
//! assert!(t_ideal > Cycle::ZERO && t_journal > Cycle::ZERO);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ideal;
pub mod journal;
pub mod shadow;

pub use ideal::{IdealDram, IdealNvm};
pub use journal::Journaling;
pub use shadow::ShadowPaging;
