//! The §6 extensions: explicit persistence barriers, a configurable
//! durability window, and bug-tolerance rollback to archived checkpoints.
//!
//! Run with `cargo run --release --example persistence_control`.

use thynvm::core::ThyNvm;
use thynvm::types::{Cycle, MemorySystem, PhysAddr, SystemConfig};

fn read_u8(sys: &mut ThyNvm, addr: u64, now: Cycle) -> u8 {
    let mut buf = [0u8; 1];
    sys.load_bytes(PhysAddr::new(addr), &mut buf, now);
    buf[0]
}

fn main() {
    let mut sys = ThyNvm::new(SystemConfig::paper());

    // --- Explicit persistence barrier (a new ISA instruction per §6) ---
    let t = sys.store_bytes(PhysAddr::new(0), &[7], Cycle::ZERO);
    let t = sys.persist_barrier(t); // everything before this is captured
    let t = sys.drain(t);
    let t2 = sys.store_bytes(PhysAddr::new(0), &[9], t); // after the barrier
    let _ = sys.crash_and_recover(t2);
    println!("after barrier + crash: value = {} (expected 7)", read_u8(&mut sys, 0, t2));
    assert_eq!(read_u8(&mut sys, 0, t2), 7);

    // --- Configurable durability window ---
    sys.set_persistence_interval_ms(2);
    println!("durability window set to 2 ms: at most 2 ms of updates can be lost");

    // --- Bug-tolerance archive: roll back past a corrupting "bug" ---
    let mut sys = ThyNvm::new(SystemConfig::paper());
    sys.set_archive_depth(8);
    let mut t = Cycle::ZERO;
    for version in 1u8..=3 {
        t = sys.store_bytes(PhysAddr::new(64), &[version], t);
        t = sys.persist_barrier(t);
        t = sys.drain(t);
        println!("checkpoint taken with value {version}");
    }
    // "version 3" turns out to be a software bug's corruption; recover to
    // the first archived checkpoint.
    let archive = sys.archived_checkpoints();
    println!("archive holds checkpoints {archive:?}");
    let _ = sys.rollback_to_checkpoint(archive[0], t).expect("archived");
    let v = read_u8(&mut sys, 64, t);
    println!("after rollback to checkpoint {}: value = {v} (expected 1)", archive[0]);
    assert_eq!(v, 1);
    println!("bug-tolerance rollback works — the §6 future-work extension, implemented.");
}
