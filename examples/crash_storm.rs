//! Crash-storm walkthrough: power fails *during recovery*, repeatedly, and
//! every restarted recovery converges to the same image.
//!
//! Recovery in this model is not an instantaneous function — it is a
//! cycle-accounted sequence of steps (read the commit record, verify
//! `C_last`'s CRCs, fall back to `C_penult` if voided, replay the BTT/PTT
//! metadata, re-arm the DRAM working set), each paying modeled NVM latency.
//! That makes recovery itself crashable: this demo arms a first crash point
//! and then *queues* additional points that land mid-recovery, so each
//! recovery attempt is torn down partway and restarted from the persisted
//! commit record.
//!
//! The printed table shows, per nested-crash depth, the interrupted steps,
//! the number of attempts, and the total recovery latency — and checks the
//! final image is byte-identical (by content fingerprint) to what a single
//! uninterrupted recovery produces. A second section arms a torn commit
//! record so the storm hits the integrity-fallback path: every retry still
//! lands on `C_penult`, never compounding the fallback.
//!
//! Run with `cargo run --release --example crash_storm`.

use thynvm::core::{MediaFault, ThyNvm};
use thynvm::types::{Cycle, MediaFaultConfig, MemorySystem, PhysAddr, SystemConfig};

const PAGE: u64 = 4096;

/// Builds a system with two completed checkpoints (values 1 then 2 at the
/// probe address) plus uncheckpointed `W_active` writes (value 3).
fn build(media: bool) -> (ThyNvm, Cycle) {
    let mut cfg = SystemConfig::small_test();
    if media {
        cfg.media = MediaFaultConfig::hardened();
        cfg.validate().expect("valid config");
    }
    let mut sys = ThyNvm::new(cfg);
    let mut now = Cycle::ZERO;
    for (epoch, fill) in [(0u64, 1u8), (1, 2)] {
        for page in 0..4u64 {
            for blk in 0..8u64 {
                let t = sys.store_bytes(
                    PhysAddr::new(page * PAGE + blk * 64),
                    &[fill + (epoch * page) as u8; 64],
                    now,
                );
                now = now.max(t);
            }
        }
        now = now.max(sys.force_checkpoint(now));
        now = sys.drain(now);
    }
    // W_active: must never survive any crash, however deep the storm.
    now = now.max(sys.store_bytes(PhysAddr::new(0), &[3u8; 64], now));
    (sys, now)
}

/// Crashes at `at` with `depth` nested points queued at recovery-step
/// boundaries (learned from `boundaries`); returns the settled system.
fn storm(media: bool, fault: Option<MediaFault>, at: Cycle, points: &[Cycle]) -> ThyNvm {
    let (mut sys, _) = build(media);
    if let Some(f) = fault {
        sys.inject_media_fault(f);
    }
    sys.arm_crash_point(at);
    for &p in points {
        sys.queue_crash_point(p);
    }
    sys.poll_crash(at + Cycle::new(1)).expect("crash fires");
    sys
}

fn main() {
    // ---- Section 1: clean crash, increasing storm depth -----------------
    let (_, t) = build(false);
    println!("== nested crash storm: clean C_last, crash at cycle {t} ==\n");

    // Probe: a single uninterrupted recovery learns the step boundaries
    // and the reference image.
    let probe = storm(false, None, t, &[]);
    let reference = probe.visible_fingerprint();
    let steps = probe.last_recovery().expect("probe recovered").steps.clone();
    println!("recovery steps of the uninterrupted probe:");
    for (step, end) in &steps {
        println!("  {step:<20} completes at cycle {end}");
    }

    println!("\n{:<6} {:>9} {:>8} {:>13} {:>10}", "depth", "attempts", "nested", "recovery µs", "identical");
    for depth in 0..=4usize {
        let points: Vec<Cycle> = (0..depth)
            .map(|i| steps[i % steps.len()].1.saturating_sub(Cycle::new(1)))
            .collect();
        let sys = storm(false, None, t, &points);
        let report = sys.last_recovery().expect("recovered");
        println!(
            "{:<6} {:>9} {:>8} {:>13.3} {:>10}",
            depth,
            report.attempts,
            report.nested_crashes,
            report.recovery_cycles.as_ns() / 1e3,
            if sys.visible_fingerprint() == reference { "yes" } else { "NO" },
        );
        assert_eq!(sys.visible_fingerprint(), reference, "storm diverged at depth {depth}");
    }

    // ---- Section 2: crash during the integrity fallback -----------------
    let (_, tm) = build(true);
    println!("\n== storm over a torn commit record (integrity fallback) ==\n");
    let probe = storm(true, Some(MediaFault::TornCommitRecord), tm, &[]);
    let reference = probe.visible_fingerprint();
    let steps = probe.last_recovery().expect("probe recovered").steps.clone();
    let points: Vec<Cycle> =
        steps.iter().map(|&(_, end)| end.saturating_sub(Cycle::new(1))).collect();
    let sys = storm(true, Some(MediaFault::TornCommitRecord), tm, &points);
    let report = sys.last_recovery().expect("recovered");
    let m = sys.stats().media;
    println!("fallback applied: {}", report.integrity_fallback);
    println!("attempts: {}   nested crashes: {}", report.attempts, report.nested_crashes);
    println!("WAL seals: {}   WAL redos (torn, redone): {}", m.wal_seals, m.wal_redos);
    println!("image identical to single-crash fallback: {}", sys.visible_fingerprint() == reference);
    assert_eq!(sys.visible_fingerprint(), reference);
    assert!(report.integrity_fallback, "storm must still land on C_penult");

    let mut buf = [0u8; 1];
    let mut probe = probe;
    probe.load_bytes(PhysAddr::new(0), &mut buf, tm + report.recovery_cycles);
    println!("probe byte at 0 after fallback: {} (C_penult's value, W_active's 3 is gone)", buf[0]);
}
