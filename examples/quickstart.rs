//! Quickstart: transparent crash consistency in a dozen lines.
//!
//! Stores data through the ThyNVM controller, lets the hardware checkpoint
//! it, pulls the plug, and shows that recovery restores the checkpointed
//! state — with no transactions, logging calls, or persistence annotations
//! in the "application" code.
//!
//! Run with `cargo run --release --example quickstart`.

use thynvm::core::ThyNvm;
use thynvm::types::{Cycle, MemorySystem, PhysAddr, SystemConfig};

fn main() {
    let mut sys = ThyNvm::new(SystemConfig::paper());
    println!("ThyNVM quickstart — {}", sys.name());

    // 1. Ordinary stores. No special API: this is the paper's whole point.
    let addr = PhysAddr::new(0x4000);
    let t = sys.store_bytes(addr, b"checkpointed state", Cycle::ZERO);
    println!("stored 18 bytes at {addr} (acknowledged at {t})");

    // 2. The controller checkpoints on epoch boundaries; force one here.
    let t = sys.force_checkpoint(t + Cycle::from_us(1));
    let t = sys.drain(t);
    println!("checkpoint complete at {t} ({} epoch(s))", sys.stats().epochs_completed);

    // 3. Overwrite, but crash before the next checkpoint…
    let t2 = sys.store_bytes(addr, b"uncommitted scribble", t);
    let report = sys.crash_and_recover(t2 + Cycle::from_us(1));
    println!(
        "crash! recovered to checkpoint #{} in {} (rolled back incomplete: {})",
        report.recovered_checkpoints, report.recovery_cycles, report.rolled_back_incomplete
    );

    // 4. …and the checkpointed value survives.
    let mut buf = [0u8; 18];
    sys.load_bytes(addr, &mut buf, t2);
    println!("after recovery: {:?}", std::str::from_utf8(&buf).unwrap());
    assert_eq!(&buf, b"checkpointed state");
    println!("consistent state restored — no application-level recovery code needed.");
}
