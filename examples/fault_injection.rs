//! Fault-injection walkthrough: crash the controller at chosen cycles and
//! validate every recovery against the persistence oracle.
//!
//! A deterministic workload (a counter array updated across several epochs)
//! first runs fault-free to learn the checkpoint timeline and build a
//! [`PersistenceOracle`] — the pure three-version model of §3.2/§4.5:
//! `W_active` is lost, `C_last` wins iff its commit record persisted by the
//! crash, else recovery falls back to `C_penult`. The demo then replays the
//! workload with a crash point armed at a spread of cycles across one
//! complete checkpoint — execution, block drain, BTT persist, page
//! writebacks, finalize — and prints, for each injected crash, where it
//! landed and whether the recovered image is byte-identical to the oracle's
//! prediction.
//!
//! A second section arms *media* faults — a torn commit record, a `C_last`
//! bit flip, corrupted PTT metadata — and shows the self-healing recovery
//! path: integrity verification rejects `C_last` and restores `C_penult`.
//!
//! A third section arms *DRAM* faults against the working copies: a
//! corrected single-bit flip (counted, harmless), poison under clean data
//! (healed transparently by re-fetching the NVM checkpoint copy) and
//! poison under dirty data (the page is quarantined — dirty bytes roll
//! back to the last checkpoint and the loss is surfaced, never silently
//! persisted).
//!
//! Run with `cargo run --release --example fault_injection`.

use thynvm::core::{InjectedCrash, MediaFault, PersistenceOracle, ThyNvm};
use thynvm::types::{
    Cycle, DramFaultConfig, Error, MediaFaultConfig, MemorySystem, PhysAddr, SystemConfig,
};

const PAGE: u64 = 4096;
const EPOCHS: u64 = 4;

/// One program step: a write or an epoch boundary.
enum Op {
    Write { addr: u64, data: Vec<u8> },
    Checkpoint,
}

/// The fixed workload: hot counters rewritten every epoch (page-writeback
/// scheme) plus a scatter of cold single blocks (block-remapping scheme).
fn workload() -> Vec<Op> {
    let mut ops = Vec::new();
    for epoch in 0..EPOCHS {
        for rep in 0..4u64 {
            for slot in 0..16u64 {
                let value = epoch * 1_000 + rep * 100 + slot;
                ops.push(Op::Write {
                    addr: (slot % 2) * PAGE + (slot / 2) * 64,
                    data: value.to_le_bytes().to_vec(),
                });
            }
        }
        for i in 0..8u64 {
            ops.push(Op::Write {
                addr: 4 * PAGE + ((i * 11 + epoch) % 32) * 64,
                data: vec![(epoch * 10 + i) as u8; 16],
            });
        }
        ops.push(Op::Checkpoint);
    }
    ops
}

fn apply(sys: &mut ThyNvm, op: &Op, now: Cycle) -> Cycle {
    match op {
        Op::Write { addr, data } => now.max(sys.store_bytes(PhysAddr::new(*addr), data, now)),
        Op::Checkpoint => now.max(sys.force_checkpoint(now)),
    }
}

/// Replays the workload with power failing at the end of cycle `at`.
fn replay_with_crash(ops: &[Op], at: Cycle) -> (InjectedCrash, ThyNvm) {
    let mut sys = ThyNvm::new(SystemConfig::small_test());
    sys.arm_crash_point(at);
    let mut now = Cycle::ZERO;
    for op in ops {
        now = apply(&mut sys, op, now);
        if let Some(crash) = sys.take_crash_report() {
            return (crash, sys);
        }
    }
    sys.poll_crash(now.max(at) + Cycle::new(1));
    (
        sys.take_crash_report().expect("invariant: poll_crash past the armed cycle fires it"),
        sys,
    )
}

fn main() {
    let ops = workload();

    // Fault-free reference run: feed the oracle, learn the timeline.
    let mut sys = ThyNvm::new(SystemConfig::small_test());
    let mut oracle = PersistenceOracle::new();
    let mut now = Cycle::ZERO;
    let mut last_job = None;
    for op in &ops {
        if let Op::Write { addr, data } = op {
            oracle.record_write(*addr, data);
        }
        now = apply(&mut sys, op, now);
        if matches!(op, Op::Checkpoint) {
            let j = sys.epoch_state().job.as_ref().expect("job overlaps execution").clone();
            oracle.record_checkpoint(j.started, j.done_at);
            last_job = Some(j);
        }
    }
    let target = last_job.expect("workload checkpoints at least once");
    println!("workload: {} ops, {EPOCHS} epochs, ends at {now}", ops.len());
    println!(
        "sweeping checkpoint of epoch {}: start={} drain={} btt={} pages={} commit={}",
        target.epoch, target.started, target.drained_at, target.btt_at, target.pages_at,
        target.done_at
    );
    println!();
    println!("{:>10}  {:<14} {:>8}  {:<8}  vs oracle", "crash@", "phase", "inflight", "outcome");

    // Crash at 24 points spread across the checkpoint (plus margins), then
    // diff every recovery byte-for-byte against the oracle.
    let lo = target.started.raw().saturating_sub(200);
    let hi = target.done_at.raw() + 200;
    let mut verified = 0usize;
    for i in 0..24u64 {
        let at = Cycle::new(lo + i * (hi - lo) / 23);
        let (crash, mut crashed) = replay_with_crash(&ops, at);
        let diffs = oracle.diff(at, |addr| {
            let mut b = [0u8; 1];
            crashed.load_bytes(PhysAddr::new(addr), &mut b, crash.resume_at);
            b[0]
        });
        assert!(diffs.is_empty(), "recovery diverged from the oracle: {:?}", diffs.first());
        verified += 1;
        println!(
            "{:>10}  {:<14} {:>8}  {:<8}  byte-identical",
            format!("{}", crash.event.cycle),
            format!("{}", crash.event.phase),
            crash.event.inflight_writebacks,
            format!("{}", crash.event.outcome),
        );
    }
    println!();
    println!(
        "{verified}/24 injected crashes recovered oracle-identical images \
         (W_active lost; C_last iff its commit persisted, else C_penult)."
    );

    // ------------------------------------------------------------------
    // Media faults: checksummed metadata + self-healing recovery.
    // ------------------------------------------------------------------
    println!();
    println!("media faults (integrity protection on):");
    let mut cfg = SystemConfig::small_test();
    cfg.media = MediaFaultConfig::hardened();
    for (name, fault) in [
        ("torn commit record", MediaFault::TornCommitRecord),
        ("C_last bit flip", MediaFault::ClastBitFlip { addr: 0 }),
        ("corrupt PTT metadata", MediaFault::CorruptPttMetadata),
    ] {
        // Two completed checkpoints, then a latent fault voids C_last.
        let mut sys = ThyNvm::new(cfg);
        let mut t = Cycle::ZERO;
        for val in [0x11u8, 0x22] {
            t = sys.store_bytes(PhysAddr::new(0), &[val; 64], t);
            t = sys.force_checkpoint(t);
            t = sys.drain(t);
        }
        sys.inject_media_fault(fault);
        let report = sys.crash_and_recover(t);
        let mut buf = [0u8; 1];
        sys.load_bytes(PhysAddr::new(0), &mut buf, t + report.recovery_cycles);
        assert!(report.integrity_fallback, "{name} must void C_last");
        assert_eq!(buf[0], 0x11, "{name}: recovery must restore C_penult");
        println!(
            "  {name:<22} C_last rejected, fell back to C_penult \
             (recovered value {:#04x}, fallbacks={})",
            buf[0],
            sys.stats().media.integrity_fallbacks
        );
    }

    // A transient read flip is healed in place by CRC-verified retries.
    let mut sys = ThyNvm::new(cfg);
    let t = sys.store_bytes(PhysAddr::new(0), &[0xAB; 64], Cycle::ZERO);
    sys.fault_model_mut().expect("media enabled").arm_transient_flips(1);
    let mut buf = [0u8; 64];
    sys.load_bytes(PhysAddr::new(0), &mut buf, t);
    assert_eq!(buf, [0xAB; 64]);
    let m = sys.stats().media;
    println!(
        "  {:<22} healed by retry without fallback (flips={} retries={} remaps={})",
        "transient read flip", m.bit_flips, m.retries, m.remaps
    );

    // ------------------------------------------------------------------
    // DRAM faults: ECC correction, transparent refetch, quarantine.
    // ------------------------------------------------------------------
    println!();
    println!("DRAM fault domain (SEC-DED model on):");
    let mut cfg = SystemConfig::small_test();
    cfg.dram_fault = DramFaultConfig::hardened();
    cfg.validate().expect("hardened DRAM config is valid");
    let mut sys = ThyNvm::new(cfg);

    // Promote page 0 past the write-density threshold, then checkpoint so a
    // clean DRAM working copy with an NVM checkpoint twin exists.
    let mut t = Cycle::ZERO;
    for blk in 0..cfg.thynvm.promote_threshold {
        t = sys.store_bytes(PhysAddr::new(u64::from(blk) * 64), &[0x5A; 64], t);
    }
    t = sys.force_checkpoint(t);
    t = sys.drain(t);

    // (a) A correctable single-bit flip: ECC fixes it inline; only counted.
    sys.dram_ecc_mut().expect("dram model enabled").arm_corrected_flips(1);
    let mut buf = [0u8; 64];
    t = sys.load_bytes(PhysAddr::new(0), &mut buf, t);
    assert_eq!(buf, [0x5A; 64]);
    println!(
        "  {:<26} data intact (corrected_flips={})",
        "corrected single-bit flip",
        sys.stats().dram.corrected_flips
    );

    // (b) Poison under *clean* data: the working copy is a cache of the NVM
    // checkpoint copy, so the block re-fetches transparently.
    sys.dram_ecc_mut().expect("dram model enabled").arm_poison(1);
    t = sys.load_bytes(PhysAddr::new(0), &mut buf, t);
    assert_eq!(buf, [0x5A; 64]);
    let d = sys.stats().dram;
    println!(
        "  {:<26} healed from NVM checkpoint copy (refetched={} retries={})",
        "poison under clean page", d.poison_refetched, d.refetch_retries
    );

    // (c) Poison under *dirty* data: the only copy is corrupt, so the page
    // is quarantined — dirty bytes roll back to the last checkpoint, the
    // page demotes to block remapping and the loss is surfaced as an error.
    t = sys.store_bytes(PhysAddr::new(0), &[0x77; 64], t);
    sys.dram_ecc_mut().expect("dram model enabled").arm_poison(1);
    sys.load_bytes(PhysAddr::new(0), &mut buf, t);
    assert_eq!(buf, [0x5A; 64], "dirty write rolled back to the last checkpoint");
    let err = sys.take_poison_error().expect("quarantine surfaces an error");
    assert!(matches!(err, Error::DramPoisonLost { .. }));
    let events = sys.take_quarantine_events();
    let d = sys.stats().dram;
    println!(
        "  {:<26} {err} (quarantined_pages={} dropped_bytes={} events={events:?})",
        "poison under dirty page", d.quarantined_pages, d.quarantine_dropped_bytes
    );
}
