//! Scaling ThyNVM to multiple cores.
//!
//! Table 2 sizes the L3 "per core"; this example instantiates the
//! multi-core platform (private L1/L2 per core, shared L3, one ThyNVM
//! controller) and shows how aggregate throughput scales while all cores
//! share the checkpointing hardware.
//!
//! Run with `cargo run --release --example multicore`.

use thynvm::cache::MulticorePlatform;
use thynvm::core::ThyNvm;
use thynvm::types::{MemorySystem, PhysAddr, SystemConfig, TraceEvent};
use thynvm::workloads::micro::{MicroConfig, MicroPattern};

fn main() {
    let cfg = SystemConfig::paper();
    let accesses_total = 240_000u64;

    println!(
        "{:<6} {:>14} {:>14} {:>12} {:>14}",
        "cores", "aggregate IPC", "per-core IPC", "checkpoints", "NVM writes MB"
    );
    for n in [1usize, 2, 4, 8] {
        // Each core runs its own Sliding working set in a disjoint range.
        let traces: Vec<Vec<TraceEvent>> = (0..n)
            .map(|c| {
                let mut micro = MicroConfig::new(MicroPattern::Sliding);
                micro.seed ^= c as u64;
                micro
                    .events(accesses_total / n as u64)
                    .map(|mut e| {
                        e.req.addr = PhysAddr::new(e.req.addr.raw() + ((c as u64) << 30));
                        e
                    })
                    .collect()
            })
            .collect();

        let mut platform = MulticorePlatform::new(cfg.cache, n);
        let mut mem = ThyNvm::new(cfg);
        let results = platform.run(traces, &mut mem);
        let agg: f64 = results.iter().map(|r| r.ipc()).sum();
        println!(
            "{:<6} {:>14.4} {:>14.4} {:>12} {:>14.1}",
            n,
            agg,
            agg / n as f64,
            MemorySystem::stats(&mem).epochs_completed,
            MemorySystem::stats(&mem).nvm_write_bytes_total() as f64 / 1e6,
        );
    }
    println!("\nAggregate IPC grows with cores while per-core IPC declines —");
    println!("all cores contend for the same NVM banks and checkpoint hardware.");
}
