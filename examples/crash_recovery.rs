//! Crash-consistency demonstration: the §1 motivating example.
//!
//! Two data structures A and B must be updated atomically (think: debiting
//! one account and crediting another). The power fails between the two
//! updates — with raw NVM this leaves a corrupt mixed state *persistently*;
//! with ThyNVM the recovered memory always reflects a checkpoint boundary,
//! so the pair is always consistent.
//!
//! Run with `cargo run --release --example crash_recovery`.

use thynvm::core::ThyNvm;
use thynvm::types::{Cycle, MemorySystem, PhysAddr, SystemConfig};

const ACCOUNT_A: PhysAddr = PhysAddr::new(0x1000);
const ACCOUNT_B: PhysAddr = PhysAddr::new(0x2000);

fn balances(sys: &mut ThyNvm, now: Cycle) -> (u64, u64) {
    let mut a = [0u8; 8];
    let mut b = [0u8; 8];
    sys.load_bytes(ACCOUNT_A, &mut a, now);
    sys.load_bytes(ACCOUNT_B, &mut b, now);
    (u64::from_le_bytes(a), u64::from_le_bytes(b))
}

fn set_balance(sys: &mut ThyNvm, addr: PhysAddr, value: u64, now: Cycle) -> Cycle {
    sys.store_bytes(addr, &value.to_le_bytes(), now)
}

fn main() {
    let mut sys = ThyNvm::new(SystemConfig::paper());

    // Initial state: A = 1000, B = 0, made durable by a checkpoint.
    let t = set_balance(&mut sys, ACCOUNT_A, 1000, Cycle::ZERO);
    let t = set_balance(&mut sys, ACCOUNT_B, 0, t);
    let t = sys.force_checkpoint(t);
    let t = sys.drain(t);
    println!("initial committed state: A + B = 1000  (A=1000, B=0)");

    // Transfer 400 from A to B… but the power fails between the stores.
    let t = set_balance(&mut sys, ACCOUNT_A, 600, t);
    println!("debited A (A=600 in the working copy)  — and now: POWER LOSS");
    // (the credit to B never executes)

    let report = sys.crash_and_recover(t + Cycle::from_us(1));
    let (a, b) = balances(&mut sys, t);
    println!(
        "recovered to checkpoint #{} — A={a}, B={b}, A+B={}",
        report.recovered_checkpoints,
        a + b
    );
    assert_eq!(a + b, 1000, "money must never be created or destroyed");

    // Retry the transfer; this time both stores land before the checkpoint.
    let t = set_balance(&mut sys, ACCOUNT_A, 600, t + Cycle::from_us(2));
    let t = set_balance(&mut sys, ACCOUNT_B, 400, t);
    let t = sys.force_checkpoint(t);
    let t = sys.drain(t);

    // Crash again, *after* the checkpoint completed.
    let _ = sys.crash_and_recover(t + Cycle::from_us(1));
    let (a, b) = balances(&mut sys, t);
    println!("retried transfer, checkpointed, crashed again — A={a}, B={b}");
    assert_eq!((a, b), (600, 400));
    println!("the committed transfer survived; the torn one never became visible.");
}
