//! Running legacy compute workloads on persistent memory (Figure 11 in
//! miniature).
//!
//! The promise of software transparency is that *unmodified* programs gain
//! crash consistency. This example runs two of the SPEC-like workload
//! stand-ins — streaming `lbm` and pointer-chasing `omnetpp` — on Ideal
//! DRAM, Ideal NVM and ThyNVM and reports IPC.
//!
//! Run with `cargo run --release --example spec_ipc`.

use thynvm::bench::runner::{run_with_caches, SystemKind};
use thynvm::types::SystemConfig;
use thynvm::workloads::spec::{profile, SpecWorkload};

fn main() {
    let cfg = SystemConfig::paper();
    let accesses = 500_000;

    for name in ["lbm", "omnetpp"] {
        let p = profile(name).expect("known profile");
        let workload = SpecWorkload::new(p);
        println!(
            "{name}: {} MB footprint, {} % writes, {} % sequential",
            p.footprint_bytes >> 20,
            p.write_pct,
            p.seq_pct
        );
        let mut base = 0.0;
        for kind in [SystemKind::IdealDram, SystemKind::IdealNvm, SystemKind::ThyNvm] {
            let res = run_with_caches(kind, cfg, workload.events(accesses));
            let ipc = res.ipc();
            if kind == SystemKind::IdealDram {
                base = ipc;
            }
            println!(
                "  {:<12} IPC {:.3}  (normalized {:.3})",
                res.system,
                ipc,
                if base > 0.0 { ipc / base } else { 0.0 }
            );
        }
        println!();
    }
    println!("ThyNVM should land within a few percent of Ideal DRAM (paper: 3.4 % average slowdown).");
}
