//! An in-memory key-value store on persistent memory (the paper's §5.3
//! storage scenario, miniature edition).
//!
//! Builds a real chained hash table on the instrumented arena, replays its
//! memory trace against ThyNVM and the Journaling and Shadow Paging
//! baselines, and reports transaction throughput and NVM write traffic —
//! a single-request-size slice of Figures 9 and 10.
//!
//! Run with `cargo run --release --example kvstore`.

use thynvm::bench::runner::{run_with_caches, SystemKind};
use thynvm::types::SystemConfig;
use thynvm::workloads::kv::{hash::HashKv, KvConfig, KvStore};

fn main() {
    let cfg = SystemConfig::paper();
    let request_bytes = 256;
    let ops = 20_000;

    println!("hash-table KV store, {request_bytes} B values, {ops} transactions\n");

    // Build the store and record its memory trace once.
    let kv_cfg = KvConfig::new(request_bytes);
    let mut store = HashKv::new(16 * 1024);
    kv_cfg.populate(&mut store, 4_096);
    let (events, transactions) = kv_cfg.trace(&mut store, ops);
    println!(
        "trace: {} memory events from {} transactions ({} keys resident)\n",
        events.len(),
        transactions,
        store.len()
    );

    println!(
        "{:<12} {:>12} {:>16} {:>14}",
        "system", "KTPS", "NVM writes (MB)", "% time ckpt"
    );
    for kind in [
        SystemKind::IdealDram,
        SystemKind::IdealNvm,
        SystemKind::Journal,
        SystemKind::Shadow,
        SystemKind::ThyNvm,
    ] {
        let res = run_with_caches(kind, cfg, events.iter().copied());
        println!(
            "{:<12} {:>12.1} {:>16.1} {:>14.2}",
            res.system,
            res.throughput_tps(transactions) / 1e3,
            res.mem.nvm_write_bytes_total() as f64 / 1e6,
            res.ckpt_stall_share(),
        );
    }
    println!("\nThyNVM should sit near the ideal systems while the logging/CoW");
    println!("baselines pay their stop-the-world checkpoint stalls.");
}
