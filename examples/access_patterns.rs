//! Watching the dual scheme adapt (§3.4 in action).
//!
//! Runs the three micro-benchmark patterns against ThyNVM and prints how
//! the controller splits work between block remapping and page writeback:
//! pages promoted/demoted, the NVM traffic breakdown, and translation-table
//! pressure. Random traffic should stay block-remapped; streaming and
//! sliding traffic should migrate to page writeback.
//!
//! Run with `cargo run --release --example access_patterns`.

use thynvm::cache::CoreModel;
use thynvm::core::ThyNvm;
use thynvm::types::{MemorySystem, SystemConfig};
use thynvm::workloads::micro::{MicroConfig, MicroPattern};

fn main() {
    let cfg = SystemConfig::paper();
    let accesses = 400_000;

    println!(
        "{:<10} {:>9} {:>9} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "pattern", "promoted", "demoted", "cpu MB", "ckpt MB", "migr MB", "BTT peak", "PTT peak"
    );
    for pattern in MicroPattern::all() {
        let micro = MicroConfig::new(pattern);
        let mut sys = ThyNvm::new(cfg);
        let mut core = CoreModel::new(cfg.cache);
        core.run_trace(micro.events(accesses), &mut sys);
        let stats = MemorySystem::stats(&sys);
        println!(
            "{:<10} {:>9} {:>9} {:>10.1} {:>10.1} {:>10.1} {:>9} {:>9}",
            pattern.as_str(),
            stats.pages_promoted,
            stats.pages_demoted,
            stats.nvm_write_bytes_cpu as f64 / 1e6,
            stats.nvm_write_bytes_ckpt as f64 / 1e6,
            stats.nvm_write_bytes_migration as f64 / 1e6,
            sys.btt().peak(),
            sys.ptt().peak(),
        );
    }
    println!("\nRandom writes stay under block remapping (promotions ≈ 0);");
    println!("streaming/sliding pages are promoted to page writeback and");
    println!("demoted again as the working set moves on — the migration");
    println!("traffic the paper discusses for the Streaming pattern.");
}
