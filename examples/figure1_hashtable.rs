//! The paper's Figure 1: updating an entry in a persistent hash table.
//!
//! Figure 1(a) shows the transactional-memory version programmers must
//! write on Mnemosyne/NV-heaps: `TM_ARGDECL`, `TMLIST_FIND`, persistent
//! declarations. Figure 1(b) shows the same function under ThyNVM —
//! *unmodified syntax and semantics*. This example is Figure 1(b) running:
//! a plain hash-table update, no transactions, with the hardware providing
//! crash consistency underneath.
//!
//! Run with `cargo run --release --example figure1_hashtable`.

use thynvm::core::ThyNvm;
use thynvm::types::{Cycle, MemorySystem, SystemConfig};
use thynvm::workloads::kv::{hash::HashKv, KvOp, KvStore};
use thynvm::workloads::Arena;

/// Figure 1(b), line for line: look up the chain, find the pair, update the
/// value — ordinary code, no `TM_*` anywhere.
fn hashtable_update(
    hashtable: &mut HashKv,
    arena: &mut Arena,
    key: u64,
    data_len: u32,
) {
    // list_t* chainPtr = get_chain(hashtablePtr, keyPtr);
    // pairPtr = (pair_t*)list_find(chainPtr, &updatePair);
    // pairPtr->secondPtr = dataPtr;
    hashtable.apply(arena, KvOp::Insert(key), data_len);
}

fn main() {
    let mut sys = ThyNvm::new(SystemConfig::paper());
    let mut arena = Arena::new(4);
    let mut table = HashKv::new(1024);

    // Build the persistent hash table and update an entry — Figure 1(b).
    let mut now = Cycle::ZERO;
    for key in 0..100 {
        hashtable_update(&mut table, &mut arena, key, 64);
    }
    // Replay the data structure's real memory accesses through ThyNVM,
    // carrying a per-key marker byte as the "data".
    for event in arena.drain_events() {
        if event.req.kind.is_write() {
            let marker = vec![0xA5u8; event.req.bytes as usize];
            now = now.max(sys.store_bytes(event.req.addr, &marker, now));
        } else {
            let mut buf = vec![0u8; event.req.bytes as usize];
            now = now.max(sys.load_bytes(event.req.addr, &mut buf, now));
        }
    }
    println!("hash table with {} entries updated through plain code", table.len());

    // The hardware checkpoints transparently…
    now = sys.force_checkpoint(now);
    now = sys.drain(now);
    println!(
        "checkpoint complete: {} epochs, {} bytes persisted to NVM",
        sys.stats().epochs_completed,
        sys.stats().nvm_write_bytes_total(),
    );

    // …so a crash cannot corrupt the table (the §2.1 complaint about
    // Figure 1(a) was exactly the programmer burden of guaranteeing this).
    let _ = sys.crash_and_recover(now + Cycle::from_us(5));
    println!("crashed and recovered — no transactional code was ever written.");
    println!();
    println!("Figure 1(a) needed: TM_ARGDECL, TMLIST_FIND, persistent");
    println!("declarations, a TM runtime, and library reimplementation.");
    println!("Figure 1(b) — this program — needed none of that.");
}
